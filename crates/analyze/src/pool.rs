//! Pool-lease lifetime analysis: every `MsgBuf` the recovery layer leases
//! must come back.
//!
//! The fault-tolerance layer (`treesvd-comm`) deposits a retransmission
//! copy of every data-plane message into a shared store before the send
//! ([`CommOp::Deposit`]) and removes it after the matching receive
//! completes ([`CommOp::Ack`]). Each deposit *leases* a pooled buffer
//! copy; the ack *returns* it. A deposit that is never acknowledged is a
//! leaked buffer that the `BufferPool` can never recycle — under the
//! steady-state-zero-allocation discipline of the zero-copy transport
//! that is a correctness bug, not a slow leak. A second ack for the same
//! lease would hand the pool a buffer it no longer owns.
//!
//! [`verify_pool_discipline`] proves, per plan, that every lease is
//! returned exactly once within its *store epoch*. Epochs are delimited
//! by [`CommOp::ClearStore`] — the supervisor wiping the whole store
//! between whole-world attempts (checkpoint restart, degradation-ladder
//! descent; `distributed_svd_with` calls `reset_store` at exactly that
//! point). Deposits stranded by an aborted attempt are forgiven *only*
//! across that boundary: [`restart_splice`] models an attempt cut short
//! mid-sweep and proves the restart discipline leak-free, and the same
//! splice **without** the clear is the negative exhibit showing why the
//! supervisor must reset the store.
//!
//! [`verify_pool_safety`] is the per-program bundle the distributed
//! executor's recovery gate runs: the blocking and overlapped recovery
//! plans, plus a mid-sweep restart replay of each.

use crate::deadlock::{CommOp, CommPlan};
use crate::report::{OpRef, Violation};
use std::collections::HashMap;
use treesvd_orderings::Program;

/// A successful pool-lease proof: the witness numbers backing the claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolProof {
    /// Buffer leases (deposits) proven returned exactly once.
    pub leases: usize,
    /// Store epochs analyzed (1 + the number of `ClearStore` boundaries).
    pub epochs: usize,
}

/// One proven lease: where the buffer was deposited and where it was
/// returned. The certificate layer stores these as the pool witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Store key: the original sender.
    pub src: usize,
    /// Store key: the receiver.
    pub dst: usize,
    /// Store key: the message tag.
    pub tag: u64,
    /// The deposit (on the sender).
    pub deposit: OpRef,
    /// The return (on the receiver).
    pub ack: OpRef,
}

/// Prove that every [`CommOp::Deposit`] in `plan` is matched by exactly
/// one [`CommOp::Ack`] within its store epoch, and return the proven
/// leases in deposit order (sorted by step, then sender rank).
///
/// The store key is `(src, dst, tag)` — exactly how `treesvd-comm` keys
/// its retransmission store. Epoch boundaries are [`CommOp::ClearStore`]
/// ops; the analysis assumes the supervisor clears the store on *all*
/// ranks at once (which is how the executor behaves — the store is a
/// single shared object), so the k-th `ClearStore` on each rank delimits
/// the same global epoch.
///
/// # Errors
/// * [`Violation::BufferLeak`] — a deposit still unacknowledged when the
///   plan ends, naming the earliest dangling deposit. Deposits stranded
///   at a [`CommOp::ClearStore`] boundary are *not* leaks: the
///   supervisor's wipe reclaims them wholesale.
/// * [`Violation::DoubleReturn`] — a second ack for the same lease in one
///   epoch, naming both returns.
/// * [`Violation::ReturnWithoutLease`] — an ack whose key was never
///   deposited in the epoch.
/// * [`Violation::AmbiguousTag`] — two live deposits with the same key
///   (the store could not tell the copies apart).
pub fn verify_pool_discipline(plan: &CommPlan) -> Result<Vec<Lease>, Violation> {
    // split each rank's ops into per-epoch segments at ClearStore ops
    let mut segments: Vec<Vec<Vec<(usize, OpRef, CommOp)>>> = vec![Vec::new(); plan.ranks];
    let mut epochs = 1usize;
    for (rank, rank_ops) in plan.ops.iter().enumerate() {
        let mut current: Vec<(usize, OpRef, CommOp)> = Vec::new();
        for (pos, &(step, op)) in rank_ops.iter().enumerate() {
            if matches!(op, CommOp::ClearStore) {
                segments[rank].push(std::mem::take(&mut current));
                continue;
            }
            current.push((step, plan.op_ref(rank, pos), op));
        }
        segments[rank].push(current);
        epochs = epochs.max(segments[rank].len());
    }

    let mut leases: Vec<Lease> = Vec::new();
    for epoch in 0..epochs {
        // live[key] = (deposit, ack-so-far) for this epoch. Deposits are
        // collected across all ranks first: a deposit always causally
        // precedes its ack (the ack sits behind the receive that matches
        // the send the deposit guards — program order the deadlock proof
        // certifies), but the two live on *different* ranks, so a linear
        // rank-major scan would see acks before their deposits.
        let mut live: HashMap<(usize, usize, u64), (OpRef, Option<OpRef>)> = HashMap::new();
        for (rank, rank_segments) in segments.iter().enumerate() {
            let Some(segment) = rank_segments.get(epoch) else { continue };
            for &(_, op_ref, op) in segment {
                if let CommOp::Deposit { to, tag } = op {
                    if live.insert((rank, to, tag), (op_ref, None)).is_some() {
                        return Err(Violation::AmbiguousTag { op: op_ref });
                    }
                }
            }
        }
        for (rank, rank_segments) in segments.iter().enumerate() {
            let Some(segment) = rank_segments.get(epoch) else { continue };
            for &(_, op_ref, op) in segment {
                if let CommOp::Ack { to, tag } = op {
                    // the receiver releases (sender → self, tag)
                    match live.get_mut(&(to, rank, tag)) {
                        None => return Err(Violation::ReturnWithoutLease { op: op_ref }),
                        Some((_, ack @ None)) => *ack = Some(op_ref),
                        Some((_, Some(first))) => {
                            return Err(Violation::DoubleReturn { op: op_ref, first: *first });
                        }
                    }
                }
            }
        }
        // End of epoch: anything still unreturned leaks — unless this
        // epoch ends at a ClearStore, where the supervisor wipes the
        // whole store and the stranded copies are reclaimed wholesale
        // (an aborted attempt legitimately leaves in-flight deposits
        // behind; that is the *point* of the clear).
        if epoch + 1 == epochs {
            let mut dangling: Vec<OpRef> = live
                .values()
                .filter_map(|(deposit, ack)| ack.is_none().then_some(*deposit))
                .collect();
            dangling.sort_by_key(|op| (op.step, op.rank));
            if let Some(&op) = dangling.first() {
                return Err(Violation::BufferLeak { op });
            }
        }
        leases.extend(live.into_iter().filter_map(|((src, dst, tag), (deposit, ack))| {
            Some(Lease { src, dst, tag, deposit, ack: ack? })
        }));
    }
    leases.sort_by_key(|l| (l.deposit.step, l.src, l.dst, l.tag));
    Ok(leases)
}

/// Model an attempt aborted at the start of step `cut_step` followed by a
/// whole-world restart: the plan's ops before `cut_step`, a
/// [`CommOp::ClearStore`] on every rank (the supervisor's `reset_store`),
/// then the full plan again. The aborted prefix strands every deposit
/// whose receive had not yet acknowledged it — the clear is what keeps
/// that from being a leak, and [`verify_pool_discipline`] on this splice
/// proves it. Splicing **without** the clear (`clear = false`) is the
/// negative exhibit: the analysis reports the stranded deposit
/// step-precisely.
pub fn restart_splice(plan: &CommPlan, cut_step: usize, clear: bool) -> CommPlan {
    let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); plan.ranks];
    for (rank, rank_ops) in plan.ops.iter().enumerate() {
        ops[rank].extend(rank_ops.iter().copied().filter(|&(step, _)| step < cut_step));
        if clear {
            ops[rank].push((cut_step, CommOp::ClearStore));
        }
        ops[rank].extend(rank_ops.iter().copied());
    }
    CommPlan { ranks: plan.ranks, ops }
}

/// Prove the pool-lease discipline for one sweep program across every
/// recovery path the distributed executor can take: the blocking and
/// overlapped recovery plans (the zero-copy/legacy and overlapped ladder
/// rungs — the sequential rung exchanges nothing), and a mid-sweep
/// restart replay of each (checkpoint restart / ladder descent with the
/// store cleared in between). This is the pool half of the recovery gate
/// in `treesvd-sim::distributed`.
///
/// # Errors
/// As [`verify_pool_discipline`], from the first failing plan.
pub fn verify_pool_safety(prog: &Program, vectors: bool) -> Result<PoolProof, Violation> {
    let mut proof = PoolProof { leases: 0, epochs: 0 };
    let blocking = CommPlan::from_program(prog).with_recovery();
    let overlapped = CommPlan::from_program_overlapped(prog, vectors).with_recovery();
    let cut = prog.steps.len() / 2;
    for plan in [
        &blocking,
        &overlapped,
        &restart_splice(&blocking, cut, true),
        &restart_splice(&overlapped, cut, true),
    ] {
        proof.leases += verify_pool_discipline(plan)?.len();
        proof.epochs += 1 + plan
            .ops
            .first()
            .map_or(0, |ops| ops.iter().filter(|(_, op)| matches!(op, CommOp::ClearStore)).count());
    }
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, NewRingOrdering, RoundRobinOrdering};

    fn sweep(ord: &dyn JacobiOrdering) -> Program {
        ord.sweep_program(0, &ord.initial_layout())
    }

    #[test]
    fn shipped_recovery_plans_are_leak_free() {
        let orderings: Vec<Box<dyn JacobiOrdering>> = vec![
            Box::new(FatTreeOrdering::new(16).unwrap()),
            Box::new(NewRingOrdering::new(10).unwrap()),
            Box::new(RoundRobinOrdering::new(12).unwrap()),
        ];
        for ord in &orderings {
            for vectors in [false, true] {
                for prog in ord.programs(ord.restore_period().max(1)) {
                    let proof = verify_pool_safety(&prog, vectors).unwrap_or_else(|v| {
                        panic!("{} (vectors={vectors}): {v}", ord.name());
                    });
                    assert!(proof.leases > 0, "{}: a sweep must lease buffers", ord.name());
                }
            }
        }
    }

    #[test]
    fn lease_count_matches_message_count() {
        let prog = sweep(&FatTreeOrdering::new(16).unwrap());
        let plan = CommPlan::from_program(&prog).with_recovery();
        let leases = verify_pool_discipline(&plan).unwrap();
        assert_eq!(leases.len(), prog.total_messages());
        for lease in &leases {
            assert!(lease.deposit.is_send, "deposits live on the sender");
            assert!(!lease.ack.is_send, "acks live on the receiver");
            assert_eq!(lease.deposit.rank, lease.src);
            assert_eq!(lease.ack.rank, lease.dst);
        }
    }

    #[test]
    fn seeded_leak_is_rejected_step_precisely() {
        // drop one ack: the matching deposit's buffer is never returned
        let prog = sweep(&FatTreeOrdering::new(8).unwrap());
        let mut plan = CommPlan::from_program(&prog).with_recovery();
        let pos = plan.ops[1]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::Ack { .. }))
            .expect("rank 1 acknowledges something");
        let (step, CommOp::Ack { to, tag }) = plan.ops[1][pos] else { unreachable!() };
        plan.ops[1].remove(pos);
        match verify_pool_discipline(&plan) {
            Err(Violation::BufferLeak { op }) => {
                assert_eq!(op.rank, to, "the leak names the depositing sender");
                assert_eq!(op.tag, tag);
                assert!(op.step <= step, "the leak names the deposit step");
            }
            other => panic!("expected BufferLeak, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_delivery_ack_is_a_double_return() {
        let prog = sweep(&RoundRobinOrdering::new(8).unwrap());
        let mut plan = CommPlan::from_program(&prog).with_recovery();
        let dup = plan.ops[0]
            .iter()
            .find(|(_, op)| matches!(op, CommOp::Ack { .. }))
            .copied()
            .expect("rank 0 acknowledges something");
        plan.ops[0].push(dup);
        match verify_pool_discipline(&plan) {
            Err(Violation::DoubleReturn { op, first }) => {
                assert_eq!(op.rank, 0);
                assert_eq!(first.rank, 0);
                assert_eq!(op.tag, first.tag);
            }
            other => panic!("expected DoubleReturn, got {other:?}"),
        }
    }

    #[test]
    fn ack_without_deposit_is_rejected() {
        let prog = sweep(&RoundRobinOrdering::new(8).unwrap());
        let mut plan = CommPlan::from_program(&prog);
        // a bare plan has no deposits at all; a stray ack has no lease
        plan.ops[0].push((0, CommOp::Ack { to: 1, tag: 0 }));
        assert!(matches!(verify_pool_discipline(&plan), Err(Violation::ReturnWithoutLease { .. })));
    }

    #[test]
    fn restart_with_store_clear_is_leak_free_but_without_is_not() {
        let prog = sweep(&NewRingOrdering::new(8).unwrap());
        let plan = CommPlan::from_program(&prog).with_recovery();
        let cut = prog.steps.len() / 2;
        // the supervisor's discipline: clear between attempts
        let leases = verify_pool_discipline(&restart_splice(&plan, cut, true)).unwrap();
        assert!(leases.len() > prog.total_messages(), "both epochs contribute leases");
        // the negative exhibit: an aborted attempt without the clear
        // strands its in-flight deposits — and a replayed deposit with the
        // same key collides with the stranded one
        let bad = restart_splice(&plan, cut, false);
        match verify_pool_discipline(&bad) {
            Err(
                Violation::BufferLeak { op }
                | Violation::AmbiguousTag { op }
                | Violation::DoubleReturn { op, .. },
            ) => {
                assert!(op.step <= prog.steps.len());
            }
            other => panic!("expected a pool violation, got {other:?}"),
        }
    }
}
