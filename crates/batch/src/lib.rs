//! Batched small-SVD engine: structure-of-arrays layout, problem-wise
//! SIMD, pool-sharded.
//!
//! The tree-architecture Jacobi machinery in `treesvd-core` solves one
//! *large* SVD by parallelizing within the problem. This crate covers the
//! opposite workload: **millions of independent small SVDs** (2×2 up to
//! ~64×64) — per-pair Procrustes alignments, per-window signal subspaces,
//! per-user Gram whitening — where each problem is far too small to
//! vectorize on its own. Following the batched order-2 SVD of Novaković
//! (arXiv 2005.07403) and the GPU batch solver line of work, the engine
//! vectorizes *across* problems instead:
//!
//! * [`BatchSoA`] stores the batch in group-major structure-of-arrays
//!   layout — problem `i` at lane `i % lanes` of group `i / lanes` — so a
//!   column pair of `lanes` problems is two contiguous planes and one
//!   AVX-512/AVX2 instruction advances 8 (or 4) problems at once;
//! * the engine ([`BatchEngine`] / [`batch_svd`]) runs a cyclic-by-rows
//!   one-sided Jacobi iteration per lane group with the branch-free
//!   rotation solve and masked rotate kernels of
//!   [`treesvd_matrix::soa`], per-problem convergence masks, and the
//!   sequential driver's exact conventions (threshold `n·ε`, descending
//!   sort via rotation-with-swap, counted final empty sweep, `‖A‖·n·ε`
//!   rank tolerance, Gram–Schmidt completion of rank-deficient factors);
//! * batches shard across the persistent parked-worker pool
//!   ([`treesvd_sim::par`]) at lane-group boundaries, and every buffer is
//!   engine-owned and reused: from the second same-shape run on, a batch
//!   solve performs **zero allocations**.
//!
//! ```
//! use treesvd_batch::{batch_svd, BatchOptions, BatchSoA};
//! use treesvd_matrix::generate;
//!
//! let ms: Vec<_> = (0..100).map(|i| generate::random_uniform(8, 8, i)).collect();
//! let mut batch = BatchSoA::from_matrices(&ms, treesvd_batch::LANES).unwrap();
//! let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
//! let u0 = batch.problem(0); // A was transformed to U in place
//! let residual = treesvd_matrix::checks::reconstruction_residual(
//!     &ms[0], &u0, out.sigma(0), &out.v_problem(0).unwrap());
//! assert!(residual < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod layout;
pub mod options;

pub use engine::{batch_svd, BatchEngine, BatchOutput};
pub use layout::{BatchSoA, SUPPORTED_LANES};
pub use options::{BatchError, BatchOptions, BatchStats};
pub use treesvd_matrix::soa::{LanePath, LANES};
