//! The batched Jacobi engine: per-group sweep loops over SoA planes,
//! sharded across the persistent worker pool.
//!
//! Every lane group runs its *own* cyclic-by-rows one-sided Jacobi
//! iteration: for each column pair `(p, q)` the engine computes the
//! lane-wise Gram entries, solves all `L` rotations branch-free, and
//! applies them under per-lane masks — so `L` problems advance per
//! instruction and a converged problem (mask cleared) stops paying for
//! rotations immediately. Because the sweep loop is per-group, a group
//! whose lanes have all converged ("drained") leaves the working set
//! entirely; there is no global barrier and no pass over finished work —
//! this is the batch-compaction effect of the SoA design.
//!
//! Sharding: groups are contiguous, independent blocks of the SoA buffer,
//! so the engine splits the batch at group boundaries with `split_at_mut`
//! and forks on [`treesvd_sim::par::join`] — the same persistent
//! parked-worker pool the blocked and distributed drivers use, honoring
//! `TREESVD_THREADS` / [`BatchOptions::threads`]. Each leaf shard owns a
//! [`ShardScratch`]; after the first run on a given shape the engine
//! performs **zero steady-state allocations** (asserted by the bench smoke
//! gate).
//!
//! Convergence and extraction mirror the sequential reference driver
//! exactly: a problem is converged after a full sweep with no rotation and
//! no swap (the final empty sweep is counted), singular values are the
//! column norms above `‖A‖·n·ε`, `U` is the normalized columns with
//! rank-deficient directions completed by modified Gram–Schmidt, and `V`
//! accumulates the same rotations from the identity.

use crate::layout::BatchSoA;
use crate::options::{BatchError, BatchOptions, BatchStats};
use treesvd_matrix::soa::{gram_lanes, rotate_lanes, rotate_lanes_dual, rotation_lanes, LanePath};
use treesvd_matrix::{ops, Matrix};
use treesvd_sim::par;

/// Sweep-count marker for problems that have not (yet) converged.
const UNCONVERGED: u32 = u32::MAX;

/// Per-run configuration snapshot handed to the shards (plain scalars, so
/// shards share one `&Ctx` across threads).
#[derive(Clone, Copy)]
struct Ctx {
    rows: usize,
    cols: usize,
    count: usize,
    threshold: f64,
    max_sweeps: usize,
    sort: bool,
    vectors: bool,
    path: LanePath,
}

/// Per-shard reusable buffers and tallies. One per fork lane; everything
/// is grown once per shape and reused run to run.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Per-group column norms, `cols × lanes`.
    norms: Vec<f64>,
    /// Col-major gather of one problem, `rows × cols` (orthonormal
    /// completion only).
    gather: Vec<f64>,
    /// Completion candidate vector, `rows`.
    cand: Vec<f64>,
    /// Best completion candidate so far, `rows`.
    best: Vec<f64>,
    /// Zero-column indices of the problem being extracted.
    zero_cols: Vec<usize>,
    /// Buffer grows during this run.
    alloc_events: u64,
    /// Problems that hit the sweep cap in this shard.
    unconverged: usize,
    /// Largest sweep count this shard observed.
    max_sweeps_used: u32,
}

impl ShardScratch {
    /// Size the buffers for a shape and reset the per-run tallies.
    fn prepare(&mut self, rows: usize, cols: usize, lanes: usize) {
        self.alloc_events = 0;
        self.unconverged = 0;
        self.max_sweeps_used = 0;
        grow_f64(&mut self.norms, cols * lanes, &mut self.alloc_events);
        grow_f64(&mut self.gather, rows * cols, &mut self.alloc_events);
        grow_f64(&mut self.cand, rows, &mut self.alloc_events);
        grow_f64(&mut self.best, rows, &mut self.alloc_events);
        if self.zero_cols.capacity() < cols {
            self.alloc_events += 1;
            self.zero_cols.reserve_exact(cols - self.zero_cols.len());
        }
        self.zero_cols.clear();
    }
}

/// Grow a buffer to `len` (zero-filled), counting a capacity growth as one
/// allocation event.
fn grow_f64(v: &mut Vec<f64>, len: usize, events: &mut u64) {
    if v.capacity() < len {
        *events += 1;
    }
    v.clear();
    v.resize(len, 0.0);
}

/// [`grow_f64`] for `u32` buffers.
fn grow_u32(v: &mut Vec<u32>, len: usize, events: &mut u64) {
    if v.capacity() < len {
        *events += 1;
    }
    v.clear();
    v.resize(len, 0);
}

/// A reusable batched-SVD solver.
///
/// The engine owns all result and scratch storage; [`BatchEngine::run`]
/// transforms the batch `A → U` in place, accumulates `V`, and fills
/// `σ`/sweep/rank tables. Running the same engine on same-shape batches
/// reuses every buffer — the steady state is allocation-free
/// ([`BatchStats::alloc_events`] is 0 from the second run on).
///
/// For one-shot use, [`batch_svd`] wraps construction, run, and result
/// extraction.
#[derive(Debug)]
pub struct BatchEngine {
    opts: BatchOptions,
    /// Right singular vectors in the same SoA layout (`cols × cols`
    /// problems), when [`BatchOptions::vectors`] is set.
    v: BatchSoA,
    /// `σ` table, problem-major: problem `i`'s values at `i·cols ..`.
    sigma: Vec<f64>,
    /// Per-problem sweep counts (padded length).
    sweeps: Vec<u32>,
    /// Per-problem numerical ranks (padded length).
    ranks: Vec<u32>,
    scratches: Vec<ShardScratch>,
    /// `(rows, cols, count, lanes)` of the last completed run.
    shape: Option<(usize, usize, usize, usize)>,
}

impl BatchEngine {
    /// A fresh engine with the given options (no storage allocated yet).
    #[must_use]
    pub fn new(opts: BatchOptions) -> Self {
        Self {
            opts,
            v: BatchSoA::placeholder(),
            sigma: Vec::new(),
            sweeps: Vec::new(),
            ranks: Vec::new(),
            scratches: Vec::new(),
            shape: None,
        }
    }

    /// The engine's options.
    #[must_use]
    pub fn options(&self) -> &BatchOptions {
        &self.opts
    }

    /// Solve every problem in `a` in place: on return each problem's
    /// columns are its left singular vectors `U`, and the engine's tables
    /// hold `σ`, `V`, sweep counts, and ranks (see the accessors).
    ///
    /// # Errors
    /// [`BatchError::NoConvergence`] if any problem hits the sweep cap;
    /// the batch contents are then unspecified (rotated, unnormalized).
    pub fn run(&mut self, a: &mut BatchSoA) -> Result<BatchStats, BatchError> {
        let (rows, cols, count, lanes) = (a.rows(), a.cols(), a.count(), a.lanes());
        let (groups, padded) = (a.groups(), a.padded_count());
        let mut events = 0u64;
        self.shape = None;

        grow_f64(&mut self.sigma, padded * cols, &mut events);
        grow_u32(&mut self.sweeps, padded, &mut events);
        grow_u32(&mut self.ranks, padded, &mut events);
        for (i, s) in self.sweeps.iter_mut().enumerate() {
            *s = if i < count { UNCONVERGED } else { 0 };
        }

        let ctx = Ctx {
            rows,
            cols,
            count,
            threshold: self.opts.threshold.unwrap_or(cols as f64 * f64::EPSILON),
            max_sweeps: self.opts.max_sweeps.max(1),
            sort: self.opts.sort,
            vectors: self.opts.vectors,
            path: self.opts.path,
        };

        if ctx.vectors {
            self.v.reshape(cols, cols, count, lanes, &mut events);
            let plane_len = self.v.plane_len();
            let group_stride = self.v.group_stride();
            let vd = self.v.data_mut();
            for g in 0..groups {
                for j in 0..cols {
                    let base = g * group_stride + j * plane_len + j * lanes;
                    vd[base..base + lanes].fill(1.0);
                }
            }
        }

        let tasks = self.opts.threads.unwrap_or_else(par::num_threads).clamp(1, groups);
        if self.scratches.capacity() < tasks {
            events += 1;
            self.scratches.reserve_exact(tasks - self.scratches.len());
        }
        while self.scratches.len() < tasks {
            self.scratches.push(ShardScratch::default());
        }
        for s in self.scratches.iter_mut().take(tasks) {
            s.prepare(rows, cols, lanes);
        }

        let a_data = a.data_mut();
        let v_data: &mut [f64] = if ctx.vectors { self.v.data_mut() } else { &mut [] };
        let sigma = &mut self.sigma[..padded * cols];
        let sweeps = &mut self.sweeps[..padded];
        let ranks = &mut self.ranks[..padded];
        let scratches = &mut self.scratches[..tasks];

        match lanes {
            4 => shard_split::<4>(&ctx, a_data, v_data, sigma, sweeps, ranks, scratches, 0),
            8 => shard_split::<8>(&ctx, a_data, v_data, sigma, sweeps, ranks, scratches, 0),
            16 => shard_split::<16>(&ctx, a_data, v_data, sigma, sweeps, ranks, scratches, 0),
            other => unreachable!("BatchSoA validated the lane width, got {other}"),
        }

        let mut unconverged = 0usize;
        let mut max_sweeps_used = 0u32;
        for s in self.scratches.iter().take(tasks) {
            events += s.alloc_events;
            unconverged += s.unconverged;
            max_sweeps_used = max_sweeps_used.max(s.max_sweeps_used);
        }
        if unconverged > 0 {
            return Err(BatchError::NoConvergence { unconverged, sweeps: ctx.max_sweeps });
        }
        self.shape = Some((rows, cols, count, lanes));
        Ok(BatchStats { problems: count, groups, lanes, max_sweeps_used, alloc_events: events })
    }

    fn expect_shape(&self) -> (usize, usize, usize, usize) {
        self.shape.expect("no completed BatchEngine::run yet")
    }

    /// All singular values, problem-major: problem `i` at `i·cols ..
    /// (i+1)·cols`, sorted descending per problem when
    /// [`BatchOptions::sort`] is set.
    ///
    /// # Panics
    /// Panics before the first successful run.
    #[must_use]
    pub fn sigmas(&self) -> &[f64] {
        let (_, cols, count, _) = self.expect_shape();
        &self.sigma[..count * cols]
    }

    /// Problem `i`'s singular values.
    ///
    /// # Panics
    /// Panics before the first successful run or for `i ≥ count`.
    #[must_use]
    pub fn sigma(&self, i: usize) -> &[f64] {
        let (_, cols, count, _) = self.expect_shape();
        assert!(i < count, "problem index out of range");
        &self.sigma[i * cols..(i + 1) * cols]
    }

    /// Sweeps problem `i` needed to converge (the final empty sweep is
    /// counted, matching the sequential driver).
    ///
    /// # Panics
    /// Panics before the first successful run or for `i ≥ count`.
    #[must_use]
    pub fn sweeps(&self, i: usize) -> usize {
        let (_, _, count, _) = self.expect_shape();
        assert!(i < count, "problem index out of range");
        self.sweeps[i] as usize
    }

    /// Numerical rank of problem `i` (singular values above `‖A‖·n·ε`).
    ///
    /// # Panics
    /// Panics before the first successful run or for `i ≥ count`.
    #[must_use]
    pub fn rank(&self, i: usize) -> usize {
        let (_, _, count, _) = self.expect_shape();
        assert!(i < count, "problem index out of range");
        self.ranks[i] as usize
    }

    /// The right-singular-vector batch (SoA, `cols × cols` problems), or
    /// `None` when vectors were not accumulated.
    #[must_use]
    pub fn v(&self) -> Option<&BatchSoA> {
        (self.shape.is_some() && self.opts.vectors).then_some(&self.v)
    }

    /// Problem `i`'s right singular vectors as a dense matrix (allocates).
    ///
    /// # Panics
    /// Panics before the first successful run or for `i ≥ count`.
    #[must_use]
    pub fn v_problem(&self, i: usize) -> Option<Matrix> {
        self.v().map(|v| v.problem(i))
    }

    /// Consume the engine into an owned [`BatchOutput`].
    #[must_use]
    pub fn into_output(self, stats: BatchStats) -> BatchOutput {
        let (_, cols, count, _) = self.expect_shape();
        BatchOutput {
            count,
            cols,
            v: self.opts.vectors.then_some(self.v),
            sigma: self.sigma,
            sweeps: self.sweeps,
            ranks: self.ranks,
            stats,
        }
    }
}

/// Owned results of one [`batch_svd`] call (`U` lives in the caller's
/// batch, transformed in place).
#[derive(Debug)]
pub struct BatchOutput {
    count: usize,
    cols: usize,
    sigma: Vec<f64>,
    v: Option<BatchSoA>,
    sweeps: Vec<u32>,
    ranks: Vec<u32>,
    /// Run statistics.
    pub stats: BatchStats,
}

impl BatchOutput {
    /// Number of problems solved.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// All singular values, problem-major (`i·cols .. (i+1)·cols`).
    #[must_use]
    pub fn sigmas(&self) -> &[f64] {
        &self.sigma[..self.count * self.cols]
    }

    /// Problem `i`'s singular values.
    ///
    /// # Panics
    /// Panics for `i ≥ count`.
    #[must_use]
    pub fn sigma(&self, i: usize) -> &[f64] {
        assert!(i < self.count, "problem index out of range");
        &self.sigma[i * self.cols..(i + 1) * self.cols]
    }

    /// Sweeps problem `i` needed (final empty sweep counted).
    ///
    /// # Panics
    /// Panics for `i ≥ count`.
    #[must_use]
    pub fn sweeps(&self, i: usize) -> usize {
        assert!(i < self.count, "problem index out of range");
        self.sweeps[i] as usize
    }

    /// Numerical rank of problem `i`.
    ///
    /// # Panics
    /// Panics for `i ≥ count`.
    #[must_use]
    pub fn rank(&self, i: usize) -> usize {
        assert!(i < self.count, "problem index out of range");
        self.ranks[i] as usize
    }

    /// The right-singular-vector batch, if accumulated.
    #[must_use]
    pub fn v(&self) -> Option<&BatchSoA> {
        self.v.as_ref()
    }

    /// Problem `i`'s right singular vectors as a dense matrix (allocates).
    ///
    /// # Panics
    /// Panics for `i ≥ count`.
    #[must_use]
    pub fn v_problem(&self, i: usize) -> Option<Matrix> {
        self.v.as_ref().map(|v| v.problem(i))
    }
}

/// Solve every problem in `a` in place (`A → U`) and return the owned
/// results. One-shot wrapper around [`BatchEngine`]; for repeated batches
/// of the same shape, keep an engine and call [`BatchEngine::run`] to stay
/// allocation-free.
///
/// # Errors
/// [`BatchError::NoConvergence`] if any problem hits the sweep cap (the
/// batch contents are then unspecified).
pub fn batch_svd(a: &mut BatchSoA, opts: &BatchOptions) -> Result<BatchOutput, BatchError> {
    let mut engine = BatchEngine::new(opts.clone());
    let stats = engine.run(a)?;
    Ok(engine.into_output(stats))
}

/// Recursively split the shard slices at group boundaries, forking the
/// right half onto the pool, until each leaf owns one scratch.
#[allow(clippy::too_many_arguments)]
fn shard_split<const L: usize>(
    ctx: &Ctx,
    a: &mut [f64],
    v: &mut [f64],
    sigma: &mut [f64],
    sweeps: &mut [u32],
    ranks: &mut [u32],
    scratches: &mut [ShardScratch],
    g0: usize,
) {
    let groups = sweeps.len() / L;
    if scratches.len() <= 1 || groups <= 1 {
        let scratch = &mut scratches[0];
        run_shard::<L>(ctx, a, v, sigma, sweeps, ranks, scratch, g0);
        return;
    }
    let tasks = scratches.len();
    let left_tasks = tasks / 2;
    // group split proportional to the task split, at least one per side
    let gl = (groups * left_tasks / tasks).clamp(1, groups - 1);
    let (a_l, a_r) = a.split_at_mut(gl * ctx.cols * ctx.rows * L);
    let v_split = if v.is_empty() { 0 } else { gl * ctx.cols * ctx.cols * L };
    let (v_l, v_r) = v.split_at_mut(v_split);
    let (s_l, s_r) = sigma.split_at_mut(gl * L * ctx.cols);
    let (w_l, w_r) = sweeps.split_at_mut(gl * L);
    let (r_l, r_r) = ranks.split_at_mut(gl * L);
    let (sc_l, sc_r) = scratches.split_at_mut(left_tasks);
    par::join(
        || shard_split::<L>(ctx, a_l, v_l, s_l, w_l, r_l, sc_l, g0),
        || shard_split::<L>(ctx, a_r, v_r, s_r, w_r, r_r, sc_r, g0 + gl),
    );
}

/// One leaf shard: run every group's sweep loop and extraction serially.
#[allow(clippy::too_many_arguments)]
fn run_shard<const L: usize>(
    ctx: &Ctx,
    a: &mut [f64],
    v: &mut [f64],
    sigma: &mut [f64],
    sweeps: &mut [u32],
    ranks: &mut [u32],
    scratch: &mut ShardScratch,
    g0: usize,
) {
    let groups = sweeps.len() / L;
    let ga = ctx.cols * ctx.rows * L;
    let gv = ctx.cols * ctx.cols * L;
    for gi in 0..groups {
        let real = ctx.count.saturating_sub((g0 + gi) * L).min(L);
        if real == 0 {
            continue;
        }
        let ag = &mut a[gi * ga..(gi + 1) * ga];
        let vg: &mut [f64] = if ctx.vectors { &mut v[gi * gv..(gi + 1) * gv] } else { &mut [] };
        // monomorphize the sweep loop on the path once per group, so the
        // per-pair kernel calls dispatch on a constant and inline
        let sw = &mut sweeps[gi * L..(gi + 1) * L];
        match ctx.path {
            LanePath::Scalar => sweep_group::<L, true>(ctx, ag, vg, real, sw, scratch),
            LanePath::Auto => sweep_group::<L, false>(ctx, ag, vg, real, sw, scratch),
        }
        extract_group::<L>(
            ctx,
            ag,
            real,
            &mut sigma[gi * L * ctx.cols..(gi + 1) * L * ctx.cols],
            &mut ranks[gi * L..(gi + 1) * L],
            scratch,
        );
    }
}

/// The per-group sweep loop: cyclic-by-rows pairs, all `L` lanes advanced
/// per kernel call, per-lane convergence masks.
fn sweep_group<const L: usize, const SCALAR: bool>(
    ctx: &Ctx,
    ag: &mut [f64],
    vg: &mut [f64],
    real: usize,
    sweeps: &mut [u32],
    scratch: &mut ShardScratch,
) {
    let path = if SCALAR { LanePath::Scalar } else { LanePath::Auto };
    let pl = ctx.rows * L;
    let pv = ctx.cols * L;
    let mut active = [0u64; L];
    for a in active.iter_mut().take(real) {
        *a = u64::MAX;
    }
    let mut sweep: u32 = 0;
    loop {
        sweep += 1;
        let mut changed = [0u64; L];
        for p in 0..ctx.cols.saturating_sub(1) {
            for q in (p + 1)..ctx.cols {
                let (lo, hi) = ag.split_at_mut(q * pl);
                let x = &mut lo[p * pl..(p + 1) * pl];
                let y = &mut hi[..pl];
                let (aa, bb, cc) = gram_lanes::<L>(x, y, path);
                let rot = rotation_lanes::<L>(&aa, &bb, &cc, ctx.threshold, ctx.sort, &active);
                if rot.any_write() {
                    if ctx.vectors {
                        // one dual call rotates the A and V planes together,
                        // sharing the mask/coefficient setup — for small
                        // orders that setup dominates the row loops
                        let (vlo, vhi) = vg.split_at_mut(q * pv);
                        let vx = &mut vlo[p * pv..(p + 1) * pv];
                        rotate_lanes_dual::<L>(&rot, x, y, vx, &mut vhi[..pv], path);
                    } else {
                        rotate_lanes::<L>(&rot, x, y, path);
                    }
                    for (c, w) in changed.iter_mut().zip(rot.write.iter()) {
                        *c |= w;
                    }
                }
            }
        }
        let mut any_active = false;
        for l in 0..L {
            if active[l] != 0 {
                if changed[l] == 0 {
                    // a full sweep without a rotation or swap: converged
                    // (this empty sweep is counted, like the sequential)
                    active[l] = 0;
                    sweeps[l] = sweep;
                } else {
                    any_active = true;
                }
            }
        }
        if !any_active {
            break;
        }
        if sweep as usize >= ctx.max_sweeps {
            for l in 0..L {
                if active[l] != 0 {
                    scratch.unconverged += 1;
                    sweeps[l] = sweep;
                }
            }
            break;
        }
    }
    scratch.max_sweeps_used = scratch.max_sweeps_used.max(sweep);
}

/// Extraction for one group: per-lane column norms, rank tolerance,
/// normalization of the non-zero columns into `U`, orthonormal completion
/// of rank-deficient problems.
fn extract_group<const L: usize>(
    ctx: &Ctx,
    ag: &mut [f64],
    real: usize,
    sigma: &mut [f64],
    ranks: &mut [u32],
    scratch: &mut ShardScratch,
) {
    let pl = ctx.rows * L;
    let norms = &mut scratch.norms[..ctx.cols * L];
    for j in 0..ctx.cols {
        let plane = &ag[j * pl..(j + 1) * pl];
        for l in 0..real {
            norms[j * L + l] = norm2_lane(plane, l, L);
        }
    }
    for l in 0..real {
        let mut max_norm = 0.0_f64;
        for j in 0..ctx.cols {
            max_norm = max_norm.max(norms[j * L + l]);
        }
        let tol = max_norm * ctx.cols as f64 * f64::EPSILON;
        scratch.zero_cols.clear();
        for j in 0..ctx.cols {
            let nj = norms[j * L + l];
            if nj > tol {
                sigma[l * ctx.cols + j] = nj;
                let inv = 1.0 / nj;
                let plane = &mut ag[j * pl..(j + 1) * pl];
                let mut idx = l;
                while idx < pl {
                    plane[idx] *= inv;
                    idx += L;
                }
            } else {
                sigma[l * ctx.cols + j] = 0.0;
                scratch.zero_cols.push(j);
            }
        }
        ranks[l] = (ctx.cols - scratch.zero_cols.len()) as u32;
        if !scratch.zero_cols.is_empty() {
            // gather the problem, complete the zero directions, scatter
            // only the completed columns back
            let gather = &mut scratch.gather[..ctx.rows * ctx.cols];
            for (c, gcol) in gather.chunks_exact_mut(ctx.rows).enumerate() {
                let plane = &ag[c * pl..(c + 1) * pl];
                for (r, g) in gcol.iter_mut().enumerate() {
                    *g = plane[r * L + l];
                }
            }
            complete_orthonormal_cols(
                gather,
                ctx.rows,
                ctx.cols,
                &scratch.zero_cols,
                &mut scratch.cand,
                &mut scratch.best,
            );
            for &c in &scratch.zero_cols {
                let plane = &mut ag[c * pl..(c + 1) * pl];
                let gcol = &scratch.gather[c * ctx.rows..(c + 1) * ctx.rows];
                for (r, &g) in gcol.iter().enumerate() {
                    plane[r * L + l] = g;
                }
            }
        }
    }
}

/// Scaled Euclidean norm of one lane of a plane (`stride = lanes`), the
/// strided counterpart of [`ops::norm2`] — overflow/underflow safe on
/// extreme data.
fn norm2_lane(plane: &[f64], lane: usize, lanes: usize) -> f64 {
    let mut scale = 0.0_f64;
    let mut idx = lane;
    while idx < plane.len() {
        scale = scale.max(plane[idx].abs());
        idx += lanes;
    }
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    let inv = 1.0 / scale;
    let mut acc = 0.0_f64;
    idx = lane;
    while idx < plane.len() {
        let t = plane[idx] * inv;
        acc += t * t;
        idx += lanes;
    }
    scale * acc.sqrt()
}

/// Replace (near-)zero columns of a col-major buffer with unit vectors
/// orthonormal to all other columns — the raw-buffer counterpart of the
/// driver-side `complete_orthonormal`, allocation-free via the caller's
/// `cand`/`best` scratch.
fn complete_orthonormal_cols(
    q: &mut [f64],
    rows: usize,
    cols: usize,
    zero_cols: &[usize],
    cand: &mut [f64],
    best: &mut [f64],
) {
    assert!(rows >= cols, "cannot complete a wide matrix to orthonormal columns");
    let cand = &mut cand[..rows];
    let best = &mut best[..rows];
    for &j in zero_cols {
        let mut best_norm = 0.0_f64;
        // axis candidates; keep the one with the largest residual after
        // orthogonalization for stability
        for axis in 0..rows {
            cand.fill(0.0);
            cand[axis] = 1.0;
            for other in 0..cols {
                if other == j {
                    continue;
                }
                // not-yet-completed zero columns are zero vectors, so
                // orthogonalizing against them is a harmless no-op
                let col = &q[other * rows..(other + 1) * rows];
                let proj = ops::dot(cand, col);
                ops::axpy(-proj, col, cand);
            }
            let norm = ops::norm2(cand);
            if norm > best_norm {
                best_norm = norm;
                best.copy_from_slice(cand);
            }
            if best_norm > 0.7 {
                break; // good enough, avoid O(rows²) scans
            }
        }
        assert!(best_norm > 1e-8, "orthonormal completion failed");
        let norm = ops::norm2(best);
        ops::scal(1.0 / norm, best);
        // one re-orthogonalization pass for numerical hygiene
        for other in 0..cols {
            if other == j {
                continue;
            }
            let col = &q[other * rows..(other + 1) * rows];
            let proj = ops::dot(best, col);
            ops::axpy(-proj, col, best);
        }
        let norm = ops::norm2(best);
        ops::scal(1.0 / norm, best);
        q[j * rows..(j + 1) * rows].copy_from_slice(best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    fn random_batch(rows: usize, cols: usize, count: usize, lanes: usize, seed: u64) -> BatchSoA {
        let ms: Vec<Matrix> =
            (0..count).map(|i| generate::random_uniform(rows, cols, seed + i as u64)).collect();
        BatchSoA::from_matrices(&ms, lanes).unwrap()
    }

    #[test]
    fn diagonal_problems_sort_descending() {
        let ms: Vec<Matrix> = (0..5)
            .map(|i| {
                let d = [1.0 + i as f64, 4.0, 2.5];
                Matrix::diagonal(3, &d).unwrap()
            })
            .collect();
        let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
        let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
        for i in 0..5 {
            let s = out.sigma(i);
            let mut expect = vec![1.0 + i as f64, 4.0, 2.5];
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (got, want) in s.iter().zip(expect.iter()) {
                assert!((got - want).abs() < 1e-12, "problem {i}: {s:?} vs {expect:?}");
            }
            assert_eq!(out.rank(i), 3);
        }
    }

    #[test]
    fn factors_reconstruct_the_input() {
        let rows = 6;
        let cols = 4;
        let ms: Vec<Matrix> =
            (0..10).map(|i| generate::random_uniform(rows, cols, 40 + i as u64)).collect();
        let mut batch = BatchSoA::from_matrices(&ms, 8).unwrap();
        let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
        for (i, m) in ms.iter().enumerate() {
            let u = batch.problem(i);
            let v = out.v_problem(i).unwrap();
            let recon = treesvd_matrix::checks::reconstruction_residual(m, &u, out.sigma(i), &v);
            assert!(recon < 1e-12, "problem {i}: residual {recon}");
            assert!(treesvd_matrix::checks::orthogonality_residual(&u) < 1e-12);
            assert!(treesvd_matrix::checks::orthogonality_residual(&v) < 1e-12);
        }
    }

    #[test]
    fn second_same_shape_run_is_allocation_free() {
        let mut engine = BatchEngine::new(BatchOptions::default());
        let mut batch = random_batch(5, 5, 21, 8, 70);
        let first = engine.run(&mut batch).unwrap();
        assert!(first.alloc_events > 0, "first run must size the buffers");
        let mut batch2 = random_batch(5, 5, 21, 8, 170);
        let second = engine.run(&mut batch2).unwrap();
        assert_eq!(second.alloc_events, 0, "steady state must not allocate");
        // results still correct on the reused storage
        assert_eq!(engine.sigmas().len(), 21 * 5);
        assert!(engine.sigma(20).iter().all(|&s| s > 0.0));
    }

    #[test]
    fn vectors_off_skips_v() {
        let mut batch = random_batch(4, 4, 3, 4, 90);
        let out = batch_svd(&mut batch, &BatchOptions::default().with_vectors(false)).unwrap();
        assert!(out.v().is_none());
        assert!(out.v_problem(0).is_none());
        assert!(out.sigma(0).iter().all(|&s| s > 0.0));
    }

    #[test]
    fn single_column_problems_converge_in_one_sweep() {
        let ms: Vec<Matrix> =
            (0..6).map(|i| generate::random_uniform(5, 1, 60 + i as u64)).collect();
        let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
        let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(out.sweeps(i), 1);
            let expect = treesvd_matrix::ops::norm2(m.col(0));
            assert!((out.sigma(i)[0] - expect).abs() < 1e-13 * expect);
            let u = batch.problem(i);
            assert!((treesvd_matrix::ops::norm2(u.col(0)) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn sweep_cap_reports_no_convergence() {
        let mut batch = random_batch(6, 6, 9, 8, 80);
        let err = batch_svd(&mut batch, &BatchOptions::default().with_max_sweeps(1)).unwrap_err();
        match err {
            BatchError::NoConvergence { unconverged, sweeps } => {
                assert!(unconverged > 0 && unconverged <= 9);
                assert_eq!(sweeps, 1);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn engine_recovers_after_a_failed_run() {
        let mut engine = BatchEngine::new(BatchOptions::default().with_max_sweeps(1));
        let mut batch = random_batch(6, 6, 5, 4, 81);
        assert!(engine.run(&mut batch).is_err());
        let mut engine = BatchEngine::new(BatchOptions::default());
        let mut batch = random_batch(6, 6, 5, 4, 81);
        assert!(engine.run(&mut batch).is_ok());
        assert_eq!(engine.sigmas().len(), 30);
    }

    #[test]
    fn thread_counts_agree() {
        let reference = {
            let mut b = random_batch(4, 4, 37, 4, 95);
            batch_svd(&mut b, &BatchOptions::default().with_threads(Some(1))).unwrap()
        };
        for threads in [2, 3, 5, 8] {
            let mut b = random_batch(4, 4, 37, 4, 95);
            let out =
                batch_svd(&mut b, &BatchOptions::default().with_threads(Some(threads))).unwrap();
            assert_eq!(out.sigmas(), reference.sigmas(), "threads={threads}");
        }
    }

    #[test]
    fn rank_deficient_problems_get_completed_factors() {
        let ms: Vec<Matrix> =
            (0..5).map(|i| generate::rank_deficient(6, 4, 2, 200 + i as u64)).collect();
        let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
        let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
        for i in 0..5 {
            assert_eq!(out.rank(i), 2, "problem {i}");
            let u = batch.problem(i);
            assert!(
                treesvd_matrix::checks::orthogonality_residual(&u) < 1e-11,
                "problem {i}: U not orthonormal after completion"
            );
            assert_eq!(out.sigma(i)[2], 0.0);
            assert_eq!(out.sigma(i)[3], 0.0);
        }
    }
}
