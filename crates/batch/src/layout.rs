//! The structure-of-arrays batch container.
//!
//! A [`BatchSoA`] holds `count` independent `rows × cols` matrices in
//! **group-major SoA layout**: problems are grouped `lanes` at a time
//! (problem `i` is lane `i % lanes` of group `i / lanes`), and each group
//! is one contiguous block of `cols` column *planes* of `rows × lanes`
//! entries:
//!
//! ```text
//! data = [ group 0                                | group 1 | … ]
//! group = [ plane of col 0   | plane of col 1 | … ]          (cols planes)
//! plane = [ row 0: lane 0 … lane L−1 | row 1: … ]     (rows × lanes f64s)
//! ```
//!
//! so entry `(r, j)` of problem `g·L + l` lives at
//! `((g·cols + j)·rows + r)·L + l`. Two properties make this the right
//! layout for the batched Jacobi engine:
//!
//! * a column pair `(p, q)` of **all `L` problems in a group** is two
//!   contiguous planes — exactly the shape the lane kernels in
//!   [`treesvd_matrix::soa`] consume with unit-stride vector loads;
//! * groups are contiguous and independent, so a batch shards across pool
//!   workers by splitting `data` at group boundaries (`split_at_mut`, no
//!   locks, no copies).
//!
//! The final group is padded with zero lanes when `count % lanes != 0`;
//! zero columns are skipped by the rotation solve, so padding lanes never
//! rotate, never converge late, and cost only the blended stores.

use crate::options::BatchError;
use treesvd_matrix::Matrix;

/// Lane-group widths the engine dispatches on: 4 (one AVX2 register),
/// 8 (one AVX-512 register — the default, [`treesvd_matrix::soa::LANES`]),
/// 16 (two AVX-512 registers, amortizing the per-pair solve further).
pub const SUPPORTED_LANES: [usize; 3] = [4, 8, 16];

/// A batch of `count` same-shape small matrices in group-major SoA layout.
#[derive(Debug, Clone)]
pub struct BatchSoA {
    rows: usize,
    cols: usize,
    count: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl BatchSoA {
    /// An all-zero batch of `count` matrices of shape `rows × cols`
    /// (`rows ≥ cols ≥ 1` — batched problems are tall or square), grouped
    /// `lanes` problems at a time.
    ///
    /// # Errors
    /// [`BatchError::BadShape`], [`BatchError::BadLanes`] or
    /// [`BatchError::EmptyBatch`] on invalid parameters.
    pub fn new(rows: usize, cols: usize, count: usize, lanes: usize) -> Result<Self, BatchError> {
        if cols == 0 || rows < cols {
            return Err(BatchError::BadShape { rows, cols });
        }
        if !SUPPORTED_LANES.contains(&lanes) {
            return Err(BatchError::BadLanes(lanes));
        }
        if count == 0 {
            return Err(BatchError::EmptyBatch);
        }
        let groups = count.div_ceil(lanes);
        let data = vec![0.0; groups * cols * rows * lanes];
        Ok(Self { rows, cols, count, lanes, data })
    }

    /// An empty placeholder (used by the engine for its reusable V
    /// storage before the first run).
    pub(crate) fn placeholder() -> Self {
        Self { rows: 0, cols: 0, count: 0, lanes: crate::LANES, data: Vec::new() }
    }

    /// Re-shape in place for a new run, reusing the existing allocation
    /// when it is large enough (`events` counts the grows). All entries
    /// are reset to zero.
    pub(crate) fn reshape(
        &mut self,
        rows: usize,
        cols: usize,
        count: usize,
        lanes: usize,
        events: &mut u64,
    ) {
        let groups = count.div_ceil(lanes);
        let len = groups * cols * rows * lanes;
        if self.data.capacity() < len {
            *events += 1;
        }
        self.data.clear();
        self.data.resize(len, 0.0); // from empty: every entry is freshly zeroed
        self.rows = rows;
        self.cols = cols;
        self.count = count;
        self.lanes = lanes;
    }

    /// Pack a slice of same-shape matrices into a new batch.
    ///
    /// # Errors
    /// Propagates [`BatchSoA::new`] errors, plus
    /// [`BatchError::ShapeMismatch`] if the matrices disagree in shape.
    pub fn from_matrices(ms: &[Matrix], lanes: usize) -> Result<Self, BatchError> {
        let first = ms.first().ok_or(BatchError::EmptyBatch)?;
        let (rows, cols) = first.shape();
        let mut batch = Self::new(rows, cols, ms.len(), lanes)?;
        for (i, m) in ms.iter().enumerate() {
            batch.set_problem(i, m)?;
        }
        Ok(batch)
    }

    /// Rows of each problem.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of each problem.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of real (non-padding) problems.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Lane-group width.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of lane groups (`⌈count / lanes⌉`).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.count.div_ceil(self.lanes)
    }

    /// `groups · lanes` — the problem count including padding lanes.
    #[must_use]
    pub fn padded_count(&self) -> usize {
        self.groups() * self.lanes
    }

    /// Length of one column plane (`rows · lanes`).
    #[must_use]
    pub fn plane_len(&self) -> usize {
        self.rows * self.lanes
    }

    /// Length of one group block (`cols · rows · lanes`).
    #[must_use]
    pub fn group_stride(&self) -> usize {
        self.cols * self.rows * self.lanes
    }

    /// The raw SoA buffer (group-major, as documented on the module).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer, for the engine's group-boundary sharding.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column plane `j` of group `g` (read-only).
    ///
    /// # Panics
    /// Panics if `g` or `j` is out of range.
    #[must_use]
    pub fn plane(&self, g: usize, j: usize) -> &[f64] {
        assert!(g < self.groups() && j < self.cols, "plane index out of range");
        let start = (g * self.cols + j) * self.plane_len();
        &self.data[start..start + self.plane_len()]
    }

    /// Entry `(r, c)` of problem `i`.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    #[must_use]
    pub fn value(&self, i: usize, r: usize, c: usize) -> f64 {
        assert!(i < self.count && r < self.rows && c < self.cols, "index out of range");
        let (g, l) = (i / self.lanes, i % self.lanes);
        self.data[((g * self.cols + c) * self.rows + r) * self.lanes + l]
    }

    /// Overwrite problem `i` with the entries of `m` (the AoS → SoA
    /// transpose for one problem).
    ///
    /// # Errors
    /// [`BatchError::ShapeMismatch`] on a shape disagreement,
    /// [`BatchError::IndexOutOfBounds`] for `i ≥ count`.
    pub fn set_problem(&mut self, i: usize, m: &Matrix) -> Result<(), BatchError> {
        if m.shape() != (self.rows, self.cols) {
            return Err(BatchError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: m.shape(),
            });
        }
        if i >= self.count {
            return Err(BatchError::IndexOutOfBounds { index: i, bound: self.count });
        }
        let (g, l) = (i / self.lanes, i % self.lanes);
        let (rows, lanes, plane_len) = (self.rows, self.lanes, self.plane_len());
        for c in 0..self.cols {
            let col = m.col(c);
            let start = (g * self.cols + c) * plane_len;
            let plane = &mut self.data[start..start + plane_len];
            for r in 0..rows {
                plane[r * lanes + l] = col[r];
            }
        }
        Ok(())
    }

    /// Gather problem `i` back out as a dense [`Matrix`] (the SoA → AoS
    /// transpose; allocates — intended for result extraction, not hot
    /// loops).
    ///
    /// # Panics
    /// Panics if `i ≥ count`.
    #[must_use]
    pub fn problem(&self, i: usize) -> Matrix {
        assert!(i < self.count, "problem index out of range");
        let (g, l) = (i / self.lanes, i % self.lanes);
        let mut out = vec![0.0; self.rows * self.cols];
        for c in 0..self.cols {
            let plane = self.plane(g, c);
            for r in 0..self.rows {
                out[c * self.rows + r] = plane[r * self.lanes + l];
            }
        }
        Matrix::from_col_major(self.rows, self.cols, out).expect("valid shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    #[test]
    fn roundtrip_preserves_problems() {
        let ms: Vec<Matrix> =
            (0..11).map(|i| generate::random_uniform(5, 3, 100 + i as u64)).collect();
        let batch = BatchSoA::from_matrices(&ms, 4).unwrap();
        assert_eq!(batch.count(), 11);
        assert_eq!(batch.groups(), 3);
        assert_eq!(batch.padded_count(), 12);
        for (i, m) in ms.iter().enumerate() {
            let back = batch.problem(i);
            for c in 0..3 {
                assert_eq!(back.col(c), m.col(c), "problem {i} col {c}");
                for r in 0..5 {
                    assert_eq!(batch.value(i, r, c), m.get(r, c));
                }
            }
        }
    }

    #[test]
    fn padding_lanes_are_zero() {
        let ms: Vec<Matrix> = (0..5).map(|i| generate::random_uniform(3, 3, i as u64)).collect();
        let batch = BatchSoA::from_matrices(&ms, 8).unwrap();
        // lanes 5..8 of the single group must be zero everywhere
        for j in 0..3 {
            let plane = batch.plane(0, j);
            for r in 0..3 {
                for l in 5..8 {
                    assert_eq!(plane[r * 8 + l], 0.0);
                }
            }
        }
    }

    #[test]
    fn layout_is_group_major() {
        let batch = BatchSoA::new(2, 2, 16, 8).unwrap();
        assert_eq!(batch.group_stride(), 2 * 2 * 8);
        assert_eq!(batch.plane_len(), 2 * 8);
        assert_eq!(batch.as_slice().len(), 2 * batch.group_stride());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(BatchSoA::new(2, 3, 4, 8), Err(BatchError::BadShape { .. })));
        assert!(matches!(BatchSoA::new(3, 0, 4, 8), Err(BatchError::BadShape { .. })));
        assert!(matches!(BatchSoA::new(3, 3, 4, 5), Err(BatchError::BadLanes(5))));
        assert!(matches!(BatchSoA::new(3, 3, 0, 8), Err(BatchError::EmptyBatch)));
        assert!(matches!(BatchSoA::from_matrices(&[], 8), Err(BatchError::EmptyBatch)));
        let ms = [generate::random_uniform(3, 3, 1), generate::random_uniform(4, 3, 2)];
        assert!(matches!(BatchSoA::from_matrices(&ms, 8), Err(BatchError::ShapeMismatch { .. })));
    }

    #[test]
    fn reshape_reuses_capacity() {
        let mut b = BatchSoA::placeholder();
        let mut events = 0u64;
        b.reshape(4, 4, 20, 8, &mut events);
        assert_eq!(events, 1);
        b.data_mut()[0] = 7.0;
        b.reshape(4, 4, 20, 8, &mut events);
        assert_eq!(events, 1, "same shape must not reallocate");
        assert_eq!(b.as_slice()[0], 0.0, "reshape zeroes the buffer");
        b.reshape(2, 2, 4, 4, &mut events);
        assert_eq!(events, 1, "smaller shape must not reallocate");
    }
}
