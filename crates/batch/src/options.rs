//! Configuration, errors, and run statistics for the batched engine.

use std::fmt;
use treesvd_matrix::soa::LanePath;

/// Options for [`batch_svd`](crate::batch_svd) / [`BatchEngine`](crate::BatchEngine).
///
/// Mirrors the knobs of `treesvd_core::SvdOptions` that make sense for
/// batches of independent small problems; the ordering/topology machinery
/// does not apply (every problem is solved by one cyclic-by-rows sweep
/// schedule, vectorized across problems).
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Which kernel body executes the lane math (default: widest SIMD).
    pub path: LanePath,
    /// Pair threshold relative to the column norms; `None` derives the
    /// classical `n · ε` from the column count, matching the sequential
    /// driver.
    pub threshold: Option<f64>,
    /// Hard cap on sweeps per problem (default 60, like the drivers).
    pub max_sweeps: usize,
    /// Keep singular values sorted descending via the folded
    /// rotation-with-swap (default `true`, matching the sequential
    /// driver's conventions).
    pub sort: bool,
    /// Accumulate right singular vectors `V` (default `true`). Turning
    /// this off halves the rotate traffic per pair.
    pub vectors: bool,
    /// Host-thread budget for pool sharding; `None` uses
    /// [`par::num_threads`](treesvd_sim::par::num_threads) (which honors
    /// `TREESVD_THREADS`).
    pub threads: Option<usize>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            path: LanePath::Auto,
            threshold: None,
            max_sweeps: 60,
            sort: true,
            vectors: true,
            threads: None,
        }
    }
}

impl BatchOptions {
    /// Select the kernel path (`Auto` = widest SIMD, `Scalar` = portable
    /// fallback; bitwise-identical results either way).
    #[must_use]
    pub fn with_path(mut self, path: LanePath) -> Self {
        self.path = path;
        self
    }

    /// Set an explicit pair threshold (`None` = classical `n · ε`).
    #[must_use]
    pub fn with_threshold(mut self, threshold: Option<f64>) -> Self {
        self.threshold = threshold;
        self
    }

    /// Set the sweep cap.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Enable or disable descending sort of the singular values.
    #[must_use]
    pub fn with_sort(mut self, sort: bool) -> Self {
        self.sort = sort;
        self
    }

    /// Enable or disable right-singular-vector accumulation.
    #[must_use]
    pub fn with_vectors(mut self, vectors: bool) -> Self {
        self.vectors = vectors;
        self
    }

    /// Cap the host-thread budget (`None` = machine parallelism /
    /// `TREESVD_THREADS`).
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }
}

/// Errors from the batched engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The batch holds no problems.
    EmptyBatch,
    /// Problems must be tall or square with at least one column.
    BadShape {
        /// Rows of each problem.
        rows: usize,
        /// Columns of each problem.
        cols: usize,
    },
    /// Unsupported lane-group width (see
    /// [`SUPPORTED_LANES`](crate::SUPPORTED_LANES)).
    BadLanes(usize),
    /// A matrix disagreed with the batch shape.
    ShapeMismatch {
        /// The batch's problem shape.
        expected: (usize, usize),
        /// The offending matrix's shape.
        got: (usize, usize),
    },
    /// A problem index beyond the batch count.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of problems.
        bound: usize,
    },
    /// One or more problems hit the sweep cap without converging. The
    /// batch data is left in its rotated (unnormalized) state.
    NoConvergence {
        /// How many problems failed to converge.
        unconverged: usize,
        /// The sweep cap that was hit.
        sweeps: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::EmptyBatch => write!(f, "batch holds no problems"),
            BatchError::BadShape { rows, cols } => {
                write!(f, "batched problems must be tall or square, got {rows}x{cols}")
            }
            BatchError::BadLanes(l) => {
                write!(f, "unsupported lane width {l} (supported: 4, 8, 16)")
            }
            BatchError::ShapeMismatch { expected, got } => write!(
                f,
                "matrix shape {}x{} does not match batch shape {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            BatchError::IndexOutOfBounds { index, bound } => {
                write!(f, "problem index {index} out of bounds for batch of {bound}")
            }
            BatchError::NoConvergence { unconverged, sweeps } => {
                write!(f, "{unconverged} problem(s) did not converge within {sweeps} sweeps")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Summary statistics of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Real problems solved.
    pub problems: usize,
    /// Lane groups processed (including the padded tail group).
    pub groups: usize,
    /// Lane-group width used.
    pub lanes: usize,
    /// The largest per-problem sweep count observed.
    pub max_sweeps_used: u32,
    /// Allocation events during this run (buffer grows anywhere in the
    /// engine). Zero from the second same-shape run on: the steady state
    /// is allocation-free.
    pub alloc_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_drivers() {
        let o = BatchOptions::default();
        assert_eq!(o.path, LanePath::Auto);
        assert_eq!(o.threshold, None);
        assert_eq!(o.max_sweeps, 60);
        assert!(o.sort);
        assert!(o.vectors);
        assert_eq!(o.threads, None);
    }

    #[test]
    fn builders_chain() {
        let o = BatchOptions::default()
            .with_path(LanePath::Scalar)
            .with_threshold(Some(1e-14))
            .with_max_sweeps(10)
            .with_sort(false)
            .with_vectors(false)
            .with_threads(Some(3));
        assert_eq!(o.path, LanePath::Scalar);
        assert_eq!(o.threshold, Some(1e-14));
        assert_eq!(o.max_sweeps, 10);
        assert!(!o.sort);
        assert!(!o.vectors);
        assert_eq!(o.threads, Some(3));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(BatchError::EmptyBatch.to_string().contains("no problems"));
        assert!(BatchError::BadShape { rows: 2, cols: 3 }.to_string().contains("2x3"));
        assert!(BatchError::BadLanes(5).to_string().contains('5'));
        let e = BatchError::ShapeMismatch { expected: (4, 4), got: (3, 2) };
        assert!(e.to_string().contains("3x2") && e.to_string().contains("4x4"));
        let e = BatchError::NoConvergence { unconverged: 2, sweeps: 60 };
        assert!(e.to_string().contains('2') && e.to_string().contains("60"));
    }
}
