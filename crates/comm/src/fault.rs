//! Deterministic, seeded fault injection at the communicator boundary.
//!
//! The paper's CM-5 implementation assumed a lossless data network; a real
//! transport drops, delays, duplicates, and corrupts messages, and whole
//! ranks stall or crash. This module gives the executor a *replayable*
//! model of exactly those misbehaviours: a [`FaultPlan`] decides, per
//! `(source, destination, tag)` edge and purely as a SplitMix64 function
//! of its seed, which fault (if any) strikes each message — so every chaos
//! run can be reproduced from a single `u64`.
//!
//! The recovery side lives here too. A [`FaultInjector`] pairs the plan
//! with a *retransmission store*: every faultable send first deposits a
//! copy keyed by `(source, dest, tag)`, and a receiver whose bounded
//! `recv` times out asks the store for a redelivery; a successful receive
//! acknowledges (removes) the entry. The store models the reliable
//! control network that the CM-5 ran *alongside* its data network — the
//! fault plan attacks only the data plane, never the ack/redelivery
//! protocol. The single deliberate exception is a
//! [poisoned link](FaultPlan::with_poisoned_link): total loss of a
//! directed edge, control plane included, which no amount of retrying can
//! absorb — the case the executor's degradation ladder exists for.
//!
//! All counters are atomics shared by every rank of the world; they feed
//! the `DistributedOutcome` health report. Copies made for the store and
//! for injected duplicates are charged to a separate `chaos_allocations`
//! counter — never to the rank-local [`BufferPool`](crate::BufferPool) —
//! so the zero-steady-state-allocation discipline of the pooled data
//! plane stays measurable (and enforced) even while chaos is armed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// SplitMix64 — the same generator `treesvd-matrix` seeds everything
/// with, reproduced here so the comm crate stays dependency-free.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `(src, dst, tag)` and a per-fault-kind salt into one decision
/// word. Chaining SplitMix64 keeps each coordinate's influence avalanche-
/// complete, so adjacent tags do not produce correlated faults.
fn decision_word(seed: u64, salt: u64, src: usize, dst: usize, tag: u64) -> u64 {
    let mut w = splitmix64(seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F));
    w = splitmix64(w ^ src as u64);
    w = splitmix64(w ^ dst as u64);
    splitmix64(w ^ tag)
}

/// Map a decision word to a unit-interval probability draw.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 1;
const SALT_DELAY: u64 = 2;
const SALT_DUP: u64 = 3;
const SALT_CORRUPT: u64 = 4;

/// Receiver-side retry discipline for a bounded blocking receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Additional receive attempts after the first timeout; each attempt
    /// first asks the retransmission store for a redelivery.
    pub max_retries: u32,
    /// Multiplier applied to the receive window between attempts — the
    /// exponential backoff (2.0 doubles the window every retry).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 0, backoff: 2.0 }
    }
}

/// What a stalled rank does when its stall event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The rank goes silent for the duration, then resumes — absorbed by
    /// peers' retry budgets when the sleep fits inside them.
    Sleep(Duration),
    /// The rank dies mid-run; recovery requires a checkpoint restart.
    Crash,
}

/// A one-shot per-rank event: at the top of `sweep`, `rank` misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// The affected rank.
    pub rank: usize,
    /// The sweep (0-based) at whose start the event fires.
    pub sweep: usize,
    /// Sleep or crash.
    pub kind: StallKind,
}

/// A deterministic, seeded fault schedule for one distributed run.
///
/// Probabilities are evaluated independently per `(source, dest, tag)`
/// message from the seed alone — two runs with the same plan inject
/// byte-identical fault sequences. The default plan injects nothing
/// (armed-but-inert: the recovery machinery runs, no faults fire), which
/// is the regression baseline the chaos soak gate uses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of every per-message decision.
    pub seed: u64,
    /// Probability a message is silently dropped in flight.
    pub drop: f64,
    /// Probability a message is delayed (reordering arises naturally:
    /// later messages overtake a delayed one).
    pub delay: f64,
    /// Upper bound of an injected delay; the actual delay is a
    /// seed-derived fraction of this.
    pub max_delay: Duration,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability one payload element is overwritten with NaN — the
    /// poison the receive-seam finite-check exists to catch.
    pub corrupt: f64,
    /// One-shot rank stall/crash events.
    pub stalls: Vec<StallEvent>,
    /// Directed `(source, dest)` edges with *total* loss: every message
    /// dropped and redelivery refused. Unabsorbable by retries — only the
    /// degradation ladder (ultimately the sequential fallback) survives
    /// it.
    pub poisoned_links: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// The canonical replayable chaos mix for a seed: moderate drop,
    /// delay, duplication, and corruption probabilities plus one
    /// seed-derived stall event (a short sleep or a crash). Everything it
    /// injects is absorbable by the chaos [`FaultPolicy`] defaults
    /// (retry + redelivery for message faults, checkpoint restart for the
    /// crash); pair it with checkpointing when the derived event is a
    /// crash.
    ///
    /// [`FaultPolicy`]: ../treesvd_sim/struct.FaultPolicy.html
    pub fn chaos(seed: u64) -> Self {
        let bits = splitmix64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let stall = StallEvent {
            rank: (bits % 4) as usize,
            sweep: 1 + (bits >> 8) as usize % 2,
            kind: if bits & 1 == 0 {
                StallKind::Sleep(Duration::from_millis(4))
            } else {
                StallKind::Crash
            },
        };
        Self {
            seed,
            drop: 0.06,
            delay: 0.12,
            max_delay: Duration::from_millis(2),
            duplicate: 0.06,
            corrupt: 0.03,
            stalls: vec![stall],
            poisoned_links: Vec::new(),
        }
    }

    /// Set the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the delay probability and bound.
    pub fn with_delay(mut self, p: f64, max_delay: Duration) -> Self {
        self.delay = p;
        self.max_delay = max_delay;
        self
    }

    /// Set the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the payload-corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Add a one-shot stall/crash event.
    pub fn with_stall(mut self, event: StallEvent) -> Self {
        self.stalls.push(event);
        self
    }

    /// Kill the directed `src → dst` edge outright (drops every message
    /// *and* refuses redelivery).
    pub fn with_poisoned_link(mut self, src: usize, dst: usize) -> Self {
        self.poisoned_links.push((src, dst));
        self
    }

    /// Whether the plan can inject any fault at all.
    pub fn is_inert(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.stalls.is_empty()
            && self.poisoned_links.is_empty()
    }
}

/// The interposer's verdict on one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFate {
    /// How many copies actually enter the network (0 = dropped,
    /// 2 = duplicated).
    pub deliveries: u8,
    /// Hold the message this long before it becomes receivable.
    pub delay: Option<Duration>,
    /// Overwrite this payload element with NaN before delivery.
    pub corrupt_index: Option<usize>,
}

/// Monotonic fault/recovery counters shared by all ranks of a world.
#[derive(Debug, Default)]
struct FaultCounters {
    drops: AtomicU64,
    delays: AtomicU64,
    duplicates: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    redeliveries: AtomicU64,
    chaos_allocations: AtomicU64,
}

/// A point-in-time copy of the injector's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Messages dropped in flight.
    pub drops: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Payloads poisoned with NaN.
    pub corruptions: u64,
    /// Stall/crash events fired.
    pub stalls: u64,
    /// Messages recovered from the retransmission store.
    pub redeliveries: u64,
    /// Allocations made by the fault layer itself (store deposits and
    /// duplicate copies) — deliberately kept out of the pool accounting.
    pub chaos_allocations: u64,
}

impl FaultSnapshot {
    /// Total injected faults of all kinds.
    pub fn injected(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.corruptions + self.stalls
    }
}

/// The armed fault layer of one world: the plan, the retransmission
/// store, one-shot event bookkeeping, and the shared counters. Clone the
/// `Arc` into every rank's communicator.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// `(src, dst, tag) → payload copy`; deposited at send, removed on
    /// ack or redelivery.
    store: Mutex<std::collections::HashMap<(usize, usize, u64), Vec<f64>>>,
    /// One latch per `plan.stalls` entry.
    fired: Mutex<Vec<bool>>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = Mutex::new(vec![false; plan.stalls.len()]);
        Self {
            plan,
            store: Mutex::new(std::collections::HashMap::new()),
            fired,
            counters: FaultCounters::default(),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the directed `src → dst` edge is completely dead.
    pub fn link_poisoned(&self, src: usize, dst: usize) -> bool {
        self.plan.poisoned_links.contains(&(src, dst))
    }

    /// Deposit the retransmission copy for a message about to be sent.
    /// Skipped on a poisoned link (redelivery is refused there anyway).
    pub fn deposit(&self, src: usize, dst: usize, tag: u64, payload: &[f64]) {
        if self.link_poisoned(src, dst) {
            return;
        }
        self.counters.chaos_allocations.fetch_add(1, Ordering::Relaxed);
        self.store.lock().expect("fault store").insert((src, dst, tag), payload.to_vec());
    }

    /// Acknowledge a delivered message: drop its retransmission copy.
    pub fn acknowledge(&self, src: usize, dst: usize, tag: u64) {
        self.store.lock().expect("fault store").remove(&(src, dst, tag));
    }

    /// Drop every retransmission copy. Called between executor attempts:
    /// different transports use different tag encodings, so a deposit
    /// left over from a failed attempt must never satisfy a redelivery in
    /// the next one. Stall latches and counters are deliberately kept —
    /// a crash event stays fired across the restart it caused.
    pub fn reset_store(&self) {
        self.store.lock().expect("fault store").clear();
    }

    /// Ask the store to redeliver `(src, dst, tag)`. Returns the clean
    /// payload copy (and implicitly acknowledges it), or `None` when the
    /// link is poisoned or nothing was deposited (the sender has not sent
    /// yet — keep retrying).
    pub fn redeliver(&self, src: usize, dst: usize, tag: u64) -> Option<Vec<f64>> {
        if self.link_poisoned(src, dst) {
            return None;
        }
        let hit = self.store.lock().expect("fault store").remove(&(src, dst, tag));
        if hit.is_some() {
            self.counters.redeliveries.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Decide the fate of one send, counting whatever it injects. Fully
    /// deterministic in `(plan.seed, src, dst, tag)`.
    pub fn decide_send(&self, src: usize, dst: usize, tag: u64, payload_len: usize) -> SendFate {
        let p = &self.plan;
        if self.link_poisoned(src, dst) {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return SendFate { deliveries: 0, delay: None, corrupt_index: None };
        }
        if p.drop > 0.0 && unit(decision_word(p.seed, SALT_DROP, src, dst, tag)) < p.drop {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return SendFate { deliveries: 0, delay: None, corrupt_index: None };
        }
        let mut fate = SendFate { deliveries: 1, delay: None, corrupt_index: None };
        if p.duplicate > 0.0 && unit(decision_word(p.seed, SALT_DUP, src, dst, tag)) < p.duplicate {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            fate.deliveries = 2;
        }
        if p.delay > 0.0 {
            let w = decision_word(p.seed, SALT_DELAY, src, dst, tag);
            if unit(w) < p.delay {
                self.counters.delays.fetch_add(1, Ordering::Relaxed);
                let frac = unit(splitmix64(w));
                fate.delay = Some(p.max_delay.mul_f64(frac));
            }
        }
        if p.corrupt > 0.0 && payload_len > 0 {
            let w = decision_word(p.seed, SALT_CORRUPT, src, dst, tag);
            if unit(w) < p.corrupt {
                self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                fate.corrupt_index = Some(splitmix64(w) as usize % payload_len);
            }
        }
        fate
    }

    /// Charge one fault-layer allocation (used for duplicate copies made
    /// outside [`deposit`](FaultInjector::deposit)).
    pub fn charge_allocation(&self) {
        self.counters.chaos_allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// The stall/crash event for `(rank, sweep)`, if one is due. One-shot:
    /// a fired event never fires again (a restarted run resumes past it).
    pub fn stall_event(&self, rank: usize, sweep: usize) -> Option<StallKind> {
        let mut fired = self.fired.lock().expect("stall latches");
        for (i, ev) in self.plan.stalls.iter().enumerate() {
            if ev.rank == rank && ev.sweep == sweep && !fired[i] {
                fired[i] = true;
                self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                return Some(ev.kind);
            }
        }
        None
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        let c = &self.counters;
        FaultSnapshot {
            drops: c.drops.load(Ordering::Relaxed),
            delays: c.delays.load(Ordering::Relaxed),
            duplicates: c.duplicates.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
            redeliveries: c.redeliveries.load(Ordering::Relaxed),
            chaos_allocations: c.chaos_allocations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultPlan::chaos(7));
        let b = FaultInjector::new(FaultPlan::chaos(7));
        let c = FaultInjector::new(FaultPlan::chaos(8));
        let mut diverged = false;
        for tag in 0..200u64 {
            let fa = a.decide_send(0, 1, tag, 16);
            assert_eq!(fa, b.decide_send(0, 1, tag, 16), "same seed, same fate");
            if fa != c.decide_send(0, 1, tag, 16) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds should disagree somewhere in 200 messages");
    }

    #[test]
    fn chaos_plan_injects_every_fault_kind_somewhere() {
        let inj = FaultInjector::new(FaultPlan::chaos(3));
        for tag in 0..2000u64 {
            inj.decide_send(0, 1, tag, 8);
        }
        let s = inj.snapshot();
        assert!(s.drops > 0 && s.delays > 0 && s.duplicates > 0 && s.corruptions > 0, "{s:?}");
        assert!(s.injected() > 0);
    }

    #[test]
    fn deposit_redeliver_acknowledge_cycle() {
        let inj = FaultInjector::new(FaultPlan::default());
        inj.deposit(0, 1, 42, &[1.0, 2.0]);
        assert_eq!(inj.redeliver(0, 1, 42), Some(vec![1.0, 2.0]));
        assert_eq!(inj.redeliver(0, 1, 42), None, "redelivery acknowledges");
        inj.deposit(0, 1, 43, &[3.0]);
        inj.acknowledge(0, 1, 43);
        assert_eq!(inj.redeliver(0, 1, 43), None, "ack removes the copy");
        assert_eq!(inj.snapshot().redeliveries, 1);
        assert_eq!(inj.snapshot().chaos_allocations, 2);
    }

    #[test]
    fn poisoned_link_drops_everything_and_refuses_redelivery() {
        let inj = FaultInjector::new(FaultPlan::default().with_poisoned_link(2, 0));
        inj.deposit(2, 0, 9, &[1.0]);
        let fate = inj.decide_send(2, 0, 9, 1);
        assert_eq!(fate.deliveries, 0);
        assert_eq!(inj.redeliver(2, 0, 9), None);
        // the reverse direction is unaffected
        assert_eq!(inj.decide_send(0, 2, 9, 1).deliveries, 1);
    }

    #[test]
    fn stall_events_fire_exactly_once() {
        let ev = StallEvent { rank: 1, sweep: 2, kind: StallKind::Crash };
        let inj = FaultInjector::new(FaultPlan::default().with_stall(ev));
        assert_eq!(inj.stall_event(0, 2), None);
        assert_eq!(inj.stall_event(1, 1), None);
        assert_eq!(inj.stall_event(1, 2), Some(StallKind::Crash));
        assert_eq!(inj.stall_event(1, 2), None, "one-shot");
        assert_eq!(inj.snapshot().stalls, 1);
    }

    #[test]
    fn default_plan_is_inert_chaos_is_not() {
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan::chaos(0).is_inert());
        let inj = FaultInjector::new(FaultPlan::default());
        for tag in 0..500 {
            assert_eq!(inj.decide_send(0, 1, tag, 4).deliveries, 1);
        }
        assert_eq!(inj.snapshot().injected(), 0);
    }
}
