//! Rank-local buffer pool with lease-based zero-copy payloads.
//!
//! Every [`Communicator`](crate::Communicator) owns a [`BufferPool`]. A
//! send borrows a buffer from the sender's pool ([`BufferPool::take`]),
//! fills it, and ships it as a [`MsgBuf`]; the receiver gets the *same*
//! allocation as a lease and, when it drops the lease, the storage rides a
//! return channel back to the originating rank's pool. After a short
//! warm-up the pool reaches a fixed population and a multi-sweep run makes
//! **zero payload allocations** — the same `steady_alloc_events == 0`
//! discipline the blocked driver enforces for its scratch space.
//!
//! A [`MsgBuf`] can also be *detached* (no home pool): then the `Vec`
//! itself transfers ownership from sender to receiver, which is how the
//! distributed executor moves whole columns without copying them at all.

use std::sync::mpsc::{channel, Receiver, Sender};

/// A leased (or free-floating) message payload.
///
/// Dereferences to `[f64]`. Dropping a pooled buffer returns its storage
/// to the pool it was taken from, on whichever thread that pool lives;
/// dropping a detached one frees it. [`MsgBuf::detach`] takes the storage
/// out, adopting the allocation instead of returning it.
pub struct MsgBuf {
    data: Vec<f64>,
    /// Return channel to the owning pool; `None` for detached buffers.
    home: Option<Sender<Vec<f64>>>,
}

impl MsgBuf {
    /// Wrap an owned vector as a free-floating (pool-less) buffer. The
    /// receiver that [`detach`es](MsgBuf::detach) it adopts the
    /// allocation — ownership transfer, zero copies.
    pub fn detached(data: Vec<f64>) -> Self {
        Self { data, home: None }
    }

    /// Take the storage out, defusing the return-to-pool drop.
    pub fn detach(mut self) -> Vec<f64> {
        self.home = None;
        std::mem::take(&mut self.data)
    }

    /// Replace the contents with a copy of `src` (reusing capacity).
    pub fn load(&mut self, src: &[f64]) {
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    /// Append a copy of `src` (reusing capacity; the pool pre-reserves).
    pub fn extend_from_slice(&mut self, src: &[f64]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for MsgBuf {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::DerefMut for MsgBuf {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl std::fmt::Debug for MsgBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgBuf")
            .field("len", &self.data.len())
            .field("pooled", &self.home.is_some())
            .finish()
    }
}

impl Drop for MsgBuf {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            // The pool (and its rank) may already be gone during teardown;
            // then the storage simply frees here.
            let _ = home.send(std::mem::take(&mut self.data));
        }
    }
}

/// A rank-local pool of reusable payload buffers.
///
/// `take` hands out cleared buffers with at least the requested capacity,
/// preferring storage recycled through the return channel; it counts every
/// fresh allocation (and every capacity growth) so executors can assert
/// the zero-allocation steady state.
pub struct BufferPool {
    free: Vec<Vec<f64>>,
    returns: Receiver<Vec<f64>>,
    home: Sender<Vec<f64>>,
    allocations: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        let (home, returns) = channel();
        Self { free: Vec::new(), returns, home, allocations: 0 }
    }

    /// Borrow a cleared buffer with capacity for `capacity` elements.
    ///
    /// Recycled leases that have come back through the return channel are
    /// reused first; only an empty pool (or a buffer too small for
    /// `capacity`) costs an allocation event.
    pub fn take(&mut self, capacity: usize) -> MsgBuf {
        while let Ok(returned) = self.returns.try_recv() {
            self.free.push(returned);
        }
        let mut data = match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.allocations += 1;
                Vec::with_capacity(capacity)
            }
        };
        data.clear();
        if data.capacity() < capacity {
            self.allocations += 1;
            data.reserve(capacity - data.len());
        }
        MsgBuf { data, home: Some(self.home.clone()) }
    }

    /// Number of allocation events so far (fresh buffers plus capacity
    /// growths). Stable across an interval ⇔ that interval ran
    /// allocation-free.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

/// An anonymous in-process channel carrying [`MsgBuf`] payloads — the
/// zero-copy transport's raw hop. Exposed so the tuner's calibration
/// probe can time the fixed per-message cost without constructing
/// channels outside this crate (the analyzer's modelled thread seam).
#[must_use]
pub fn loopback_channel() -> (Sender<MsgBuf>, Receiver<MsgBuf>) {
    channel()
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("free", &self.free.len())
            .field("allocations", &self.allocations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_lease_returns_to_pool() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take(8);
        buf.load(&[1.0, 2.0]);
        assert_eq!(pool.allocations(), 1);
        drop(buf);
        let again = pool.take(8);
        assert_eq!(pool.allocations(), 1, "recycled, not reallocated");
        assert!(again.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn detach_adopts_the_storage() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take(4);
        buf.load(&[3.0]);
        let v = buf.detach();
        assert_eq!(v, vec![3.0]);
        // detached storage never comes back
        let _ = pool.take(4);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn capacity_growth_counts_as_allocation() {
        let mut pool = BufferPool::new();
        drop(pool.take(2));
        let big = pool.take(64);
        assert!(big.home.is_some());
        assert_eq!(pool.allocations(), 2, "reuse that had to grow is an event");
        drop(big);
        drop(pool.take(64));
        assert_eq!(pool.allocations(), 2, "right-sized reuse is free");
    }

    #[test]
    fn lease_returns_across_threads() {
        let mut pool = BufferPool::new();
        let buf = pool.take(16);
        std::thread::spawn(move || drop(buf)).join().unwrap();
        drop(pool.take(16));
        assert_eq!(pool.allocations(), 1);
    }
}
