//! Minimal message-passing substrate — the stand-in for the CM-5's CMMD
//! library that the paper's implementation would have been written against.
//!
//! The SVD executors in this workspace come in two flavours: the
//! *simulated* machine in `treesvd-sim` (synchronous, with modelled
//! communication costs) and a genuinely *distributed-style* executor in
//! which every processor is its own thread owning its two columns and
//! exchanging them by explicit point-to-point messages. This crate
//! provides the communication layer for the latter:
//!
//! * [`Communicator`] — the rank-addressed send/recv interface;
//! * [`ThreadWorld`] — a real multi-threaded implementation over
//!   std channels (one mailbox per rank, tag-matched receives);
//! * barrier and allreduce collectives built on the point-to-point layer,
//!   as a real message-passing library would;
//! * a deterministic, seeded fault-injection and recovery layer (the
//!   `fault` module: replayable drop/delay/duplicate/corrupt plans, rank
//!   stall/crash events, a retransmission store with ack-on-receive, and
//!   bounded-timeout retries with exponential backoff at the recv seam).
//!
//! Messages are [`MsgBuf`] payloads with a `u64` tag; receives match on
//! `(source, tag)` exactly, so the deterministic schedules of
//! `treesvd-orderings` translate into deadlock-free, order-independent
//! exchanges (sends are buffered/asynchronous, like a buffered CMMD
//! `send_noblock`). Payloads move zero-copy: a pooled buffer is leased
//! from the sender's [`BufferPool`] and recycled when the receiver drops
//! the lease, while a detached one transfers ownership of its allocation
//! outright — either way the steady state of a long run allocates nothing
//! (see the `pool` module).
//!
//! ```
//! use treesvd_comm::ThreadWorld;
//!
//! let mut comms = ThreadWorld::new(2).into_communicators();
//! let mut c1 = comms.pop().unwrap();
//! let c0 = comms.pop().unwrap();
//! let worker = std::thread::spawn(move || c1.recv(0, 7).unwrap());
//! c0.send(1, 7, vec![1.0, 2.0]);
//! assert_eq!(worker.join().unwrap(), vec![1.0, 2.0]);
//! ```

#![deny(missing_docs)]

pub mod collectives;
pub mod fault;
#[cfg(feature = "hb-tracker")]
pub mod hb;
pub mod pool;
pub mod world;

pub use collectives::{allreduce_sum, allreduce_sum_in_place, barrier};
pub use fault::{
    FaultInjector, FaultPlan, FaultSnapshot, RetryPolicy, SendFate, StallEvent, StallKind,
};
#[cfg(feature = "hb-tracker")]
pub use hb::RaceViolation;
pub use pool::{loopback_channel, BufferPool, MsgBuf};
pub use world::{Communicator, RecvError, ThreadWorld, WorldConfig};
