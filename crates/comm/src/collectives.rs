//! Collectives built on the point-to-point layer: a dissemination barrier
//! and a recursive-doubling allreduce — the two operations the distributed
//! SVD driver needs (sweep synchronization and the global convergence
//! test).

use crate::world::{Communicator, RecvError};

/// Tag space reserved for collectives (high bit set, round in the low
/// bits); the SVD executor's data tags stay below this.
const COLLECTIVE_BASE: u64 = 1 << 63;

/// Dissemination barrier over all ranks: rank r waits, in round k, for
/// rank `r − 2^k` and signals rank `r + 2^k` (mod P). `epoch` keeps
/// successive barriers' messages apart.
///
/// # Errors
/// Propagates receive errors (a timeout means a rank died or diverged).
pub fn barrier(comm: &mut Communicator, epoch: u64) -> Result<(), RecvError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let rounds = usize::BITS - (p - 1).leading_zeros();
    for k in 0..rounds {
        let dist = 1usize << k;
        let to = (rank + dist) % p;
        let from = (rank + p - dist) % p;
        let tag = COLLECTIVE_BASE | (epoch << 8) | k as u64;
        comm.send(to, tag, Vec::new());
        comm.recv(from, tag)?;
    }
    Ok(())
}

/// Allreduce (sum) of a small vector over all ranks: gather to rank 0,
/// sum, broadcast back. Exact for any rank count (a tree reduction would
/// cut latency, but the SVD driver only reduces a handful of scalars once
/// per sweep).
///
/// # Errors
/// Propagates receive errors.
///
/// # Panics
/// Panics if ranks pass different-length vectors.
pub fn allreduce_sum(
    comm: &mut Communicator,
    epoch: u64,
    mut local: Vec<f64>,
) -> Result<Vec<f64>, RecvError> {
    let p = comm.size();
    if p == 1 {
        return Ok(local);
    }
    let rank = comm.rank();
    let up_tag = COLLECTIVE_BASE | (1 << 62) | (epoch << 8);
    let down_tag = up_tag | 1;
    if rank == 0 {
        for from in 1..p {
            let incoming = comm.recv(from, up_tag)?;
            assert_eq!(incoming.len(), local.len(), "allreduce length mismatch");
            for (l, r) in local.iter_mut().zip(incoming.iter()) {
                *l += r;
            }
        }
        for to in 1..p {
            comm.send(to, down_tag, local.clone());
        }
        Ok(local)
    } else {
        comm.send(0, up_tag, local);
        comm.recv(0, down_tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::world::ThreadWorld;
    use std::thread;

    #[test]
    fn barrier_all_ranks_pass() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let world = ThreadWorld::new(p);
            let handles: Vec<_> = world
                .into_communicators()
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        for epoch in 0..3 {
                            super::barrier(&mut c, epoch).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 4, 5, 8] {
            let world = ThreadWorld::new(p);
            let handles: Vec<_> = world
                .into_communicators()
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        let rank = c.rank() as f64;
                        super::allreduce_sum(&mut c, 0, vec![rank, 1.0]).unwrap()
                    })
                })
                .collect();
            let expect_sum: f64 = (0..p).map(|r| r as f64).sum();
            for h in handles {
                let v = h.join().unwrap();
                assert_eq!(v, vec![expect_sum, p as f64]);
            }
        }
    }

    #[test]
    fn allreduce_exact_for_non_power_of_two() {
        let p = 3;
        let world = ThreadWorld::new(p);
        let handles: Vec<_> = world
            .into_communicators()
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || super::allreduce_sum(&mut c, 9, vec![1.0]).unwrap()[0])
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let p = 4;
        let world = ThreadWorld::new(p);
        let handles: Vec<_> = world
            .into_communicators()
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let mut sums = Vec::new();
                    for epoch in 0..5u64 {
                        super::barrier(&mut c, epoch).unwrap();
                        let v = super::allreduce_sum(&mut c, epoch, vec![epoch as f64]).unwrap();
                        sums.push(v[0]);
                    }
                    sums
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0.0, 4.0, 8.0, 12.0, 16.0]);
        }
    }
}
