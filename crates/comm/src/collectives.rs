//! Collectives built on the point-to-point layer: a dissemination barrier
//! and a recursive-doubling allreduce — the two operations the distributed
//! SVD driver needs (sweep synchronization and the global convergence
//! test).

use crate::world::{Communicator, RecvError};

/// Tag space reserved for collectives (high bit set, round in the low
/// bits); the SVD executor's data tags stay below this.
const COLLECTIVE_BASE: u64 = 1 << 63;

/// Dissemination barrier over all ranks: rank r waits, in round k, for
/// rank `r − 2^k` and signals rank `r + 2^k` (mod P). `epoch` keeps
/// successive barriers' messages apart.
///
/// # Errors
/// Propagates receive errors (a timeout means a rank died or diverged).
pub fn barrier(comm: &mut Communicator, epoch: u64) -> Result<(), RecvError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let rounds = usize::BITS - (p - 1).leading_zeros();
    for k in 0..rounds {
        let dist = 1usize << k;
        let to = (rank + dist) % p;
        let from = (rank + p - dist) % p;
        let tag = COLLECTIVE_BASE | (epoch << 8) | k as u64;
        comm.send(to, tag, Vec::new());
        comm.recv(from, tag)?;
    }
    Ok(())
}

/// Allreduce (sum) of a small vector over all ranks, in place: a binomial
/// tree reduce toward rank 0 followed by the mirrored binomial broadcast.
/// Exact for any rank count. Every payload travels in a pooled
/// [`MsgBuf`](crate::MsgBuf) leased from the sender — no `clone()` per
/// level, and after the first epoch warms each rank's pool the collective
/// runs allocation-free (asserted in this module's tests).
///
/// The tree changes the order partial sums combine in compared to the old
/// gather-to-root loop; the SVD driver only reduces small integer-valued
/// counters (exact in `f64`), so results are unchanged.
///
/// # Errors
/// Propagates receive errors.
///
/// # Panics
/// Panics if ranks pass different-length vectors.
pub fn allreduce_sum_in_place(
    comm: &mut Communicator,
    epoch: u64,
    local: &mut [f64],
) -> Result<(), RecvError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let base = COLLECTIVE_BASE | (1 << 62) | (epoch << 8);
    // Reduce: at distance d = 2^k, every rank that is an odd multiple of d
    // ships its partial sum to the even multiple d below it and goes
    // passive; rank 0 absorbs a partner per level.
    let mut dist = 1usize;
    let mut passive_at = None;
    while dist < p {
        let up_tag = base | ((dist.trailing_zeros() as u64) << 1);
        if rank.is_multiple_of(2 * dist) {
            let partner = rank + dist;
            if partner < p {
                let lease = comm.recv_buf(partner, up_tag)?;
                assert_eq!(lease.len(), local.len(), "allreduce length mismatch");
                for (l, r) in local.iter_mut().zip(lease.iter()) {
                    *l += r;
                }
            }
        } else {
            let partner = rank - dist;
            let mut buf = comm.buf(local.len());
            buf.load(local);
            comm.send_buf(partner, up_tag, buf);
            passive_at = Some(dist);
            break;
        }
        dist *= 2;
    }
    // Broadcast: mirror the tree. A rank that went passive at distance d
    // receives the total from its parent there, then relays to its own
    // children at distances d/2, d/4, …, 1; rank 0 starts at the top.
    let top = match passive_at {
        Some(d) => {
            let down_tag = base | ((d.trailing_zeros() as u64) << 1) | 1;
            let lease = comm.recv_buf(rank - d, down_tag)?;
            assert_eq!(lease.len(), local.len(), "allreduce length mismatch");
            local.copy_from_slice(&lease);
            d / 2
        }
        None => dist / 2,
    };
    // Take every relay buffer before sending any: at this point nothing
    // leased from this rank's pool is still in flight (the reduce/down
    // receives above prove all prior leases returned), so availability is
    // deterministic and the pool's population settles at exactly the relay
    // fan-out after the first epoch — a lucky fast return in the warm-up
    // epoch can no longer under-provision the steady state.
    let mut relays = Vec::new();
    let mut d = top;
    while d >= 1 {
        if rank + d < p {
            relays.push((d, comm.buf(local.len())));
        }
        d /= 2;
    }
    for (d, mut buf) in relays {
        let down_tag = base | ((d.trailing_zeros() as u64) << 1) | 1;
        buf.load(local);
        comm.send_buf(rank + d, down_tag, buf);
    }
    Ok(())
}

/// Allreduce (sum) of a small vector over all ranks — the owned-`Vec`
/// wrapper over [`allreduce_sum_in_place`].
///
/// # Errors
/// Propagates receive errors.
///
/// # Panics
/// Panics if ranks pass different-length vectors.
pub fn allreduce_sum(
    comm: &mut Communicator,
    epoch: u64,
    mut local: Vec<f64>,
) -> Result<Vec<f64>, RecvError> {
    allreduce_sum_in_place(comm, epoch, &mut local)?;
    Ok(local)
}

#[cfg(test)]
mod tests {
    use crate::fault::{FaultInjector, FaultPlan, RetryPolicy};
    use crate::world::{ThreadWorld, WorldConfig};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn barrier_all_ranks_pass() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let world = ThreadWorld::new(p);
            let handles: Vec<_> = world
                .into_communicators()
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        for epoch in 0..3 {
                            super::barrier(&mut c, epoch).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 4, 5, 8] {
            let world = ThreadWorld::new(p);
            let handles: Vec<_> = world
                .into_communicators()
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        let rank = c.rank() as f64;
                        super::allreduce_sum(&mut c, 0, vec![rank, 1.0]).unwrap()
                    })
                })
                .collect();
            let expect_sum: f64 = (0..p).map(|r| r as f64).sum();
            for h in handles {
                let v = h.join().unwrap();
                assert_eq!(v, vec![expect_sum, p as f64]);
            }
        }
    }

    #[test]
    fn allreduce_exact_for_non_power_of_two() {
        let p = 3;
        let world = ThreadWorld::new(p);
        let handles: Vec<_> = world
            .into_communicators()
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || super::allreduce_sum(&mut c, 9, vec![1.0]).unwrap()[0])
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0);
        }
    }

    #[test]
    fn allreduce_is_allocation_free_after_warmup() {
        for p in [2usize, 3, 4, 8] {
            let world = ThreadWorld::new(p);
            let handles: Vec<_> = world
                .into_communicators()
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        let mut acc = [c.rank() as f64, 1.0];
                        // epoch 0 warms the pool ...
                        super::allreduce_sum_in_place(&mut c, 0, &mut acc).unwrap();
                        let warm = c.payload_allocations();
                        // ... every later epoch reuses leased storage
                        for epoch in 1..12u64 {
                            acc = [c.rank() as f64, 1.0];
                            super::allreduce_sum_in_place(&mut c, epoch, &mut acc).unwrap();
                        }
                        (acc, warm, c.payload_allocations())
                    })
                })
                .collect();
            let expect: f64 = (0..p).map(|r| r as f64).sum();
            for h in handles {
                let (acc, warm, steady) = h.join().unwrap();
                assert_eq!(acc, [expect, p as f64]);
                assert_eq!(steady, warm, "P={p}: allreduce allocated after warm-up");
            }
        }
    }

    /// Build a `p`-rank world with an armed fault injector and enough
    /// retry budget to absorb what the plan injects.
    fn chaos_world(p: usize, plan: FaultPlan) -> Vec<crate::Communicator> {
        // generous retry budget (~2.5 s worst case): windows only elapse
        // when a message is actually missing, but a loaded test host can
        // deschedule a sender past several 10 ms windows
        let config = WorldConfig {
            recv_timeout: Duration::from_millis(10),
            retry: RetryPolicy { max_retries: 7, backoff: 2.0 },
            check_finite: true,
            fault: Some(Arc::new(FaultInjector::new(plan))),
        };
        ThreadWorld::with_config(p, config).into_communicators()
    }

    #[test]
    fn barrier_survives_total_message_loss() {
        // every data-plane message dropped: the barrier completes purely
        // on store redeliveries
        for p in [2usize, 4] {
            let comms = chaos_world(p, FaultPlan { drop: 1.0, ..FaultPlan::default() });
            let inj = comms[0].fault().unwrap().clone();
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        for epoch in 0..3 {
                            super::barrier(&mut c, epoch).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let s = inj.snapshot();
            assert!(s.drops > 0 && s.redeliveries == s.drops, "P={p}: {s:?}");
        }
    }

    #[test]
    fn allreduce_under_seeded_chaos_is_exact() {
        // a realistic mixed plan: drops, delays, duplicates, corruption —
        // sums must still be exact, at every rank, every epoch
        for p in [2usize, 4, 8] {
            let plan = FaultPlan {
                seed: 41,
                drop: 0.2,
                delay: 0.2,
                max_delay: Duration::from_millis(3),
                duplicate: 0.2,
                corrupt: 0.1,
                ..FaultPlan::default()
            };
            let comms = chaos_world(p, plan);
            let inj = comms[0].fault().unwrap().clone();
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        let mut out = Vec::new();
                        for epoch in 0..6u64 {
                            let rank = c.rank() as f64;
                            let v = super::allreduce_sum(&mut c, epoch, vec![rank, 1.0]).unwrap();
                            out.push(v);
                        }
                        out
                    })
                })
                .collect();
            let expect: f64 = (0..p).map(|r| r as f64).sum();
            for h in handles {
                for v in h.join().unwrap() {
                    assert_eq!(v, vec![expect, p as f64]);
                }
            }
            assert!(inj.snapshot().injected() > 0, "P={p}: the plan must actually fire");
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let p = 4;
        let world = ThreadWorld::new(p);
        let handles: Vec<_> = world
            .into_communicators()
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let mut sums = Vec::new();
                    for epoch in 0..5u64 {
                        super::barrier(&mut c, epoch).unwrap();
                        let v = super::allreduce_sum(&mut c, epoch, vec![epoch as f64]).unwrap();
                        sums.push(v[0]);
                    }
                    sums
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0.0, 4.0, 8.0, 12.0, 16.0]);
        }
    }
}
