//! Runtime happens-before tracking (the `hb-tracker` feature).
//!
//! Every rank carries a vector clock that is incremented on each local
//! event, piggybacked on every outgoing envelope, and joined on every
//! receive — the classic Fidge/Mattern construction. A process-wide
//! registry remembers, per column block, the clock of the most recent
//! access; [`Communicator::record_access`](crate::Communicator::record_access)
//! compares the current access against it and flags a [`RaceViolation`]
//! when two ranks touch the same block without a message chain ordering
//! them.
//!
//! This is the *dynamic* complement of `treesvd-analyze`'s static
//! permutation-safety check: the static check proves the schedule assigns
//! each column to one processor per step; the tracker verifies the
//! executor actually realizes that ownership transfer through messages.
//! The whole module (and the clock piggyback on envelopes) compiles away
//! when the feature is off.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Two ranks accessed the same column block with no happens-before edge
/// between the accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceViolation {
    /// The contended column block.
    pub block: usize,
    /// Rank of the earlier (registered) access.
    pub first_rank: usize,
    /// Rank of the access that raced with it.
    pub second_rank: usize,
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "column block {} accessed concurrently by rank {} and rank {}: no message chain orders the accesses",
            self.block, self.first_rank, self.second_rank
        )
    }
}

impl std::error::Error for RaceViolation {}

/// Process-wide registry of the latest access to each column block.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    last: Mutex<HashMap<usize, (usize, Vec<u64>)>>,
}

/// `a ≤ b` componentwise: the access stamped `a` happened before (or is)
/// the one stamped `b`.
fn dominated(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// One rank's tracking state: its vector clock plus the shared registry.
#[derive(Debug)]
pub(crate) struct RankState {
    rank: usize,
    // RefCell so `Communicator::send` can stay `&self`; a communicator is
    // owned by one thread, never shared.
    clock: RefCell<Vec<u64>>,
    registry: Arc<Registry>,
}

impl RankState {
    pub(crate) fn new(rank: usize, size: usize, registry: Arc<Registry>) -> Self {
        Self { rank, clock: RefCell::new(vec![0; size]), registry }
    }

    /// Local event before a send: tick, return the snapshot to piggyback.
    pub(crate) fn tick_send(&self) -> Vec<u64> {
        let mut clock = self.clock.borrow_mut();
        clock[self.rank] += 1;
        clock.clone()
    }

    /// Local event at a receive: tick, then join the sender's clock.
    pub(crate) fn join(&self, other: &[u64]) {
        let mut clock = self.clock.borrow_mut();
        clock[self.rank] += 1;
        for (mine, theirs) in clock.iter_mut().zip(other) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Current clock snapshot.
    pub(crate) fn snapshot(&self) -> Vec<u64> {
        self.clock.borrow().clone()
    }

    /// Register an access to `block`, flagging it if the previous access by
    /// another rank is not ordered before this one.
    pub(crate) fn record_access(&self, block: usize) -> Result<(), RaceViolation> {
        let stamp = {
            let mut clock = self.clock.borrow_mut();
            clock[self.rank] += 1;
            clock.clone()
        };
        let mut last = self.registry.last.lock().expect("hb registry poisoned");
        let verdict = match last.get(&block) {
            Some((prev_rank, prev_stamp))
                if *prev_rank != self.rank && !dominated(prev_stamp, &stamp) =>
            {
                Err(RaceViolation { block, first_rank: *prev_rank, second_rank: self.rank })
            }
            _ => Ok(()),
        };
        // register the access either way so later reports stay meaningful
        last.insert(block, (self.rank, stamp));
        verdict
    }
}
