//! The communicator and its threaded implementation.

use crate::fault::{FaultInjector, RetryPolicy, SendFate};
use crate::pool::{BufferPool, MsgBuf};
use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point-to-point message: payload plus matching metadata.
#[derive(Debug)]
struct Envelope {
    source: usize,
    tag: u64,
    payload: MsgBuf,
    /// Injected delay: the message exists but is not receivable before
    /// this instant. `None` for the (default) undelayed case.
    not_before: Option<Instant>,
    /// Sender's vector clock at the send — the happens-before piggyback.
    #[cfg(feature = "hb-tracker")]
    clock: Vec<u64>,
}

impl Envelope {
    /// Whether the message is receivable at `now`.
    fn due(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

/// Errors from a blocking receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The matching message did not arrive within the (possibly retried)
    /// timeout budget — a schedule bug, or an unabsorbable fault such as
    /// a dead link or crashed peer.
    Timeout {
        /// Rank that was waiting.
        rank: usize,
        /// Expected source rank.
        source: usize,
        /// Expected tag.
        tag: u64,
        /// Total time spent blocked on this edge across all attempts.
        waited: Duration,
    },
    /// The received payload contained a non-finite value and no clean
    /// redelivery was available — the poison guard at the recv seam.
    Poisoned {
        /// Rank that received the poison.
        rank: usize,
        /// Source rank of the poisoned message.
        source: usize,
        /// Tag of the poisoned message.
        tag: u64,
        /// Index of the first non-finite element.
        index: usize,
    },
    /// The world has been torn down (a peer hung up).
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { rank, source, tag, waited } => {
                write!(
                    f,
                    "rank {rank}: timed out waiting for message (source {source}, tag {tag}) \
                     after {waited:?}"
                )
            }
            RecvError::Poisoned { rank, source, tag, index } => {
                write!(
                    f,
                    "rank {rank}: non-finite value at element {index} of message \
                     (source {source}, tag {tag})"
                )
            }
            RecvError::Disconnected => write!(f, "communicator torn down"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Internal outcome of one bounded receive attempt.
enum AttemptError {
    Timeout,
    Disconnected,
}

/// Construction-time knobs of a [`ThreadWorld`]: the base receive
/// window, the retry discipline, the poison guard, and (optionally) an
/// armed fault injector shared by every rank.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Base bounded-receive window (the first attempt's timeout; retries
    /// grow it by [`RetryPolicy::backoff`]).
    pub recv_timeout: Duration,
    /// Receiver-side retry discipline.
    pub retry: RetryPolicy,
    /// Reject non-finite payload elements at the recv seam.
    pub check_finite: bool,
    /// Armed fault layer (injection + retransmission store), shared by
    /// all ranks. `None` runs the plain lossless transport.
    pub fault: Option<Arc<FaultInjector>>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            check_finite: false,
            fault: None,
        }
    }
}

/// One rank's endpoint: send to any rank, receive tag-matched messages.
///
/// Receives match on `(source, tag)`; out-of-order arrivals are parked in a
/// local pending buffer, so any send/recv interleaving consistent with the
/// schedule is accepted. When the world was built with a fault layer
/// ([`WorldConfig::fault`]), sends pass through the injector (deposit to
/// the retransmission store, then drop/delay/duplicate/corrupt per plan)
/// and receives recover: bounded attempts with exponential backoff, store
/// redelivery on timeout, duplicate suppression keyed on `(source, tag)`
/// (tags are unique per directed edge within a run, which is what makes
/// redelivery idempotent), and an optional non-finite poison guard.
pub struct Communicator {
    rank: usize,
    size: usize,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    pending: Vec<Envelope>,
    recv_timeout: Duration,
    retry: RetryPolicy,
    check_finite: bool,
    fault: Option<Arc<FaultInjector>>,
    /// `(source, tag)` keys already consumed — the duplicate filter.
    /// Only populated when the fault layer is armed.
    delivered: HashSet<(usize, u64)>,
    /// Receive attempts beyond the first, across all edges.
    retries: u64,
    pool: BufferPool,
    #[cfg(feature = "hb-tracker")]
    hb: crate::hb::RankState,
}

impl Communicator {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Borrow a cleared buffer from this rank's pool, with capacity for
    /// `capacity` elements. Fill it and pass it to
    /// [`send_buf`](Communicator::send_buf); when the receiver drops the
    /// lease the storage returns here for reuse.
    pub fn buf(&mut self, capacity: usize) -> MsgBuf {
        self.pool.take(capacity)
    }

    /// Allocation events charged to this rank's buffer pool so far. Stable
    /// across an interval ⇔ every message in that interval reused pooled
    /// (or adopted) storage.
    pub fn payload_allocations(&self) -> u64 {
        self.pool.allocations()
    }

    /// Receive attempts beyond the first (timeouts that were retried),
    /// across all edges of this rank.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The armed fault layer, if any.
    pub fn fault(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Asynchronous (buffered) send of `payload` to `dest` with `tag`.
    ///
    /// The buffer travels by reference-move, never by copy: a pooled
    /// buffer comes back to this rank's pool when the receiver drops its
    /// lease; a [detached](MsgBuf::detached) one transfers ownership of
    /// the allocation outright. With a fault layer armed the message
    /// first deposits its retransmission copy, then suffers whatever the
    /// plan decides (an injected drop releases the buffer back to the
    /// pool exactly as a delivered-and-dropped lease would).
    ///
    /// # Panics
    /// Panics if `dest` is out of range, or — on the plain lossless
    /// transport only — if the destination endpoint is gone. With the
    /// fault layer armed a dead peer counts as a drop instead (crashed
    /// ranks are a modelled fault, not a programming error).
    pub fn send_buf(&self, dest: usize, tag: u64, mut payload: MsgBuf) {
        assert!(dest < self.size, "rank {dest} out of range");
        let fate = match &self.fault {
            Some(f) if dest != self.rank => {
                f.deposit(self.rank, dest, tag, &payload);
                f.decide_send(self.rank, dest, tag, payload.len())
            }
            _ => SendFate { deliveries: 1, delay: None, corrupt_index: None },
        };
        #[cfg(feature = "hb-tracker")]
        let clock = self.hb.tick_send();
        if fate.deliveries == 0 {
            // injected drop: the buffer goes home to the pool right here
            return;
        }
        if let Some(i) = fate.corrupt_index {
            payload[i] = f64::NAN;
        }
        let not_before = fate.delay.map(|d| Instant::now() + d);
        if fate.deliveries > 1 {
            let f = self.fault.as_ref().expect("duplicates only come from the injector");
            f.charge_allocation();
            let _ = self.peers[dest].send(Envelope {
                source: self.rank,
                tag,
                payload: MsgBuf::detached(payload.to_vec()),
                not_before,
                #[cfg(feature = "hb-tracker")]
                clock: clock.clone(),
            });
        }
        // unbounded channel: cannot block, cannot deadlock
        let delivered = self.peers[dest].send(Envelope {
            source: self.rank,
            tag,
            payload,
            not_before,
            #[cfg(feature = "hb-tracker")]
            clock,
        });
        if delivered.is_err() && self.fault.is_none() {
            panic!("world torn down during send");
        }
    }

    /// Asynchronous (buffered) send of an owned `payload` — the
    /// compatibility wrapper over [`send_buf`](Communicator::send_buf).
    ///
    /// # Panics
    /// Panics if `dest` is out of range. Sending to self is allowed (the
    /// message is received like any other).
    pub fn send(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        self.send_buf(dest, tag, MsgBuf::detached(payload));
    }

    /// Park an arrival, unless the duplicate filter already consumed its
    /// `(source, tag)` key.
    fn intake(&mut self, env: Envelope) {
        if self.fault.is_some() && self.delivered.contains(&(env.source, env.tag)) {
            return; // duplicate (or late original after redelivery): discard
        }
        self.pending.push(env);
    }

    /// Index of the first non-finite payload element, when the poison
    /// guard is on.
    fn screen(&self, payload: &[f64]) -> Option<usize> {
        if !self.check_finite {
            return None;
        }
        payload.iter().position(|x| !x.is_finite())
    }

    /// Mark `(source, tag)` consumed: arm the duplicate filter, purge any
    /// parked copies, and acknowledge the retransmission store.
    fn complete(&mut self, source: usize, tag: u64) {
        if let Some(f) = &self.fault {
            f.acknowledge(source, self.rank, tag);
            self.delivered.insert((source, tag));
            self.pending.retain(|e| !(e.source == source && e.tag == tag));
        }
    }

    /// One bounded receive attempt: wait up to `window` for a *due*
    /// `(source, tag)` message, honouring injected delays (a parked
    /// not-yet-due match shortens the sleep to its due time, never past
    /// the window's deadline).
    fn recv_attempt(
        &mut self,
        source: usize,
        tag: u64,
        window: Duration,
    ) -> Result<MsgBuf, AttemptError> {
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if let Some(idx) =
                self.pending.iter().position(|e| e.source == source && e.tag == tag && e.due(now))
            {
                let env = self.pending.swap_remove(idx);
                #[cfg(feature = "hb-tracker")]
                self.hb.join(&env.clock);
                return Ok(env.payload);
            }
            // earliest matching parked-but-delayed arrival, if any
            let next_due = self
                .pending
                .iter()
                .filter(|e| e.source == source && e.tag == tag)
                .filter_map(|e| e.not_before)
                .min();
            let limit = next_due.map_or(deadline, |t| t.min(deadline));
            let now = Instant::now();
            if limit <= now {
                if next_due.is_none_or(|t| t > now) {
                    return Err(AttemptError::Timeout);
                }
                continue; // a delayed match just became due
            }
            match self.inbox.recv_timeout(limit - now) {
                Ok(env) => self.intake(env),
                Err(RecvTimeoutError::Timeout) => {} // loop re-evaluates deadline/due
                Err(RecvTimeoutError::Disconnected) => match next_due {
                    // all senders are gone but a delayed match is already
                    // parked: sleep it due, then take it
                    Some(t) => {
                        let now = Instant::now();
                        if t > now {
                            std::thread::sleep(t - now);
                        }
                    }
                    None => return Err(AttemptError::Disconnected),
                },
            }
        }
    }

    /// Blocking receive of the message with exactly `(source, tag)`,
    /// returning the payload as a lease. Dropping the lease recycles the
    /// storage into the *sender's* pool; [`MsgBuf::detach`] adopts it.
    ///
    /// With a fault layer armed this is the recovery seam: each timed-out
    /// attempt first asks the retransmission store for a redelivery, then
    /// retries with an exponentially grown window, up to
    /// [`RetryPolicy::max_retries`]. A payload failing the poison guard
    /// is discarded and recovered the same way (the store holds the
    /// pre-corruption copy).
    ///
    /// # Errors
    /// [`RecvError::Timeout`] if nothing matching arrives within the
    /// whole retry budget (carrying the total time blocked),
    /// [`RecvError::Poisoned`] if only non-finite payloads were seen, or
    /// [`RecvError::Disconnected`] if the world died.
    pub fn recv_buf(&mut self, source: usize, tag: u64) -> Result<MsgBuf, RecvError> {
        let start = Instant::now();
        let mut window = self.recv_timeout;
        let mut poisoned: Option<usize> = None;
        let mut attempt: u32 = 0;
        loop {
            match self.recv_attempt(source, tag, window) {
                Ok(buf) => match self.screen(&buf) {
                    None => {
                        self.complete(source, tag);
                        return Ok(buf);
                    }
                    Some(index) => {
                        poisoned = Some(index);
                        drop(buf); // poisoned copy: discard, try to recover
                    }
                },
                Err(AttemptError::Disconnected) => return Err(RecvError::Disconnected),
                Err(AttemptError::Timeout) => {}
            }
            // recovery: the reliable store may hold the clean copy
            if let Some(f) = &self.fault {
                if let Some(data) = f.redeliver(source, self.rank, tag) {
                    let buf = MsgBuf::detached(data);
                    if let Some(index) = self.screen(&buf) {
                        // even the deposited copy is poisoned: the sender
                        // itself produced non-finite data — unrecoverable
                        return Err(RecvError::Poisoned { rank: self.rank, source, tag, index });
                    }
                    self.complete(source, tag);
                    return Ok(buf);
                }
            }
            attempt += 1;
            if attempt > self.retry.max_retries {
                return match poisoned {
                    Some(index) => Err(RecvError::Poisoned { rank: self.rank, source, tag, index }),
                    None => Err(RecvError::Timeout {
                        rank: self.rank,
                        source,
                        tag,
                        waited: start.elapsed(),
                    }),
                };
            }
            self.retries += 1;
            window = window.mul_f64(self.retry.backoff);
        }
    }

    /// Non-blocking receive: returns the `(source, tag)` message if it has
    /// already been delivered (and is due), `None` otherwise (never
    /// parks). Used by the overlapped executor to complete a prefetched
    /// arrival early — at the top of the step instead of its deferred
    /// point of use — whenever the message is in; correctness never
    /// depends on it succeeding (a poisoned early arrival is discarded
    /// here and recovered by the blocking receive later).
    pub fn try_recv_buf(&mut self, source: usize, tag: u64) -> Option<MsgBuf> {
        while let Ok(env) = self.inbox.try_recv() {
            self.intake(env);
        }
        let now = Instant::now();
        let idx =
            self.pending.iter().position(|e| e.source == source && e.tag == tag && e.due(now))?;
        let env = self.pending.swap_remove(idx);
        #[cfg(feature = "hb-tracker")]
        self.hb.join(&env.clock);
        if self.screen(&env.payload).is_some() {
            return None; // drop the poisoned copy; blocking recv recovers
        }
        self.complete(source, tag);
        Some(env.payload)
    }

    /// Non-blocking receive returning an owned `Vec<f64>` — the detaching
    /// wrapper over [`try_recv_buf`](Communicator::try_recv_buf).
    pub fn try_recv(&mut self, source: usize, tag: u64) -> Option<Vec<f64>> {
        Some(self.try_recv_buf(source, tag)?.detach())
    }

    /// Blocking receive returning an owned `Vec<f64>` — the compatibility
    /// wrapper over [`recv_buf`](Communicator::recv_buf) (the payload is
    /// detached, so pooled storage is adopted rather than recycled).
    ///
    /// # Errors
    /// Propagates [`Communicator::recv_buf`] errors.
    pub fn recv(&mut self, source: usize, tag: u64) -> Result<Vec<f64>, RecvError> {
        Ok(self.recv_buf(source, tag)?.detach())
    }

    /// Exchange with a peer: send ours, receive theirs (same tag). The
    /// common idiom of the Jacobi schedules.
    ///
    /// # Errors
    /// Propagates [`Communicator::recv`] errors.
    pub fn exchange(
        &mut self,
        peer: usize,
        tag: u64,
        payload: Vec<f64>,
    ) -> Result<Vec<f64>, RecvError> {
        self.send(peer, tag, payload);
        self.recv(peer, tag)
    }

    /// Register an access to column block `block` with the happens-before
    /// tracker, flagging it if the previous access by another rank is not
    /// ordered before this one by a message chain.
    ///
    /// # Errors
    /// [`RaceViolation`](crate::hb::RaceViolation) naming the block and the
    /// two racing ranks.
    #[cfg(feature = "hb-tracker")]
    pub fn record_access(&self, block: usize) -> Result<(), crate::hb::RaceViolation> {
        self.hb.record_access(block)
    }

    /// This rank's current vector clock (for diagnostics).
    #[cfg(feature = "hb-tracker")]
    pub fn vector_clock(&self) -> Vec<u64> {
        self.hb.snapshot()
    }
}

/// A "world": builds the communicators for `size` ranks sharing one
/// process.
pub struct ThreadWorld {
    comms: Vec<Communicator>,
}

impl ThreadWorld {
    /// Create a world of `size` ranks with the default 5-second receive
    /// timeout.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_config(size, WorldConfig::default())
    }

    /// Create a world with an explicit receive timeout (tests use short
    /// ones to exercise the failure path).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_timeout(size: usize, recv_timeout: Duration) -> Self {
        Self::with_config(size, WorldConfig { recv_timeout, ..WorldConfig::default() })
    }

    /// Create a world with the full knob set: receive window, retry
    /// discipline, poison guard, and (optionally) an armed fault layer.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_config(size: usize, config: WorldConfig) -> Self {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        #[cfg(feature = "hb-tracker")]
        let registry = std::sync::Arc::new(crate::hb::Registry::default());
        let comms = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Communicator {
                rank,
                size,
                inbox,
                peers: senders.clone(),
                pending: Vec::new(),
                recv_timeout: config.recv_timeout,
                retry: config.retry,
                check_finite: config.check_finite,
                fault: config.fault.clone(),
                delivered: HashSet::new(),
                retries: 0,
                pool: BufferPool::new(),
                #[cfg(feature = "hb-tracker")]
                hb: crate::hb::RankState::new(rank, size, registry.clone()),
            })
            .collect();
        Self { comms }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.comms.len()
    }

    /// Take the per-rank communicators (consumes the world's endpoints;
    /// call once, then move each into its thread).
    pub fn into_communicators(self) -> Vec<Communicator> {
        self.comms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::thread;

    #[test]
    fn ping_pong() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            let msg = c1.recv(0, 7).unwrap();
            c1.send(0, 8, msg.iter().map(|x| x * 2.0).collect());
        });
        c0.send(1, 7, vec![1.0, 2.0]);
        let back = c0.recv(1, 8).unwrap();
        assert_eq!(back, vec![2.0, 4.0]);
        h.join().unwrap();
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 2, vec![2.0]);
        c0.send(1, 1, vec![1.0]);
        // receive in the opposite order
        assert_eq!(c1.recv(0, 1).unwrap(), vec![1.0]);
        assert_eq!(c1.recv(0, 2).unwrap(), vec![2.0]);
    }

    #[test]
    fn self_send_works() {
        let world = ThreadWorld::new(1);
        let mut comms = world.into_communicators();
        let mut c = comms.pop().unwrap();
        c.send(0, 0, vec![9.0]);
        assert_eq!(c.recv(0, 0).unwrap(), vec![9.0]);
    }

    #[test]
    fn timeout_reports_context() {
        let world = ThreadWorld::with_timeout(2, Duration::from_millis(20));
        let mut comms = world.into_communicators();
        let _c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let err = c0.recv(1, 42).unwrap_err();
        match err {
            RecvError::Timeout { rank, source, tag, waited } => {
                assert_eq!((rank, source, tag), (0, 1, 42));
                assert!(waited >= Duration::from_millis(20), "waited = {waited:?}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("tag 42") && text.contains("after"), "{text}");
    }

    #[test]
    fn exchange_is_symmetric() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || c1.exchange(0, 3, vec![10.0]).unwrap());
        let got0 = c0.exchange(1, 3, vec![20.0]).unwrap();
        let got1 = h.join().unwrap();
        assert_eq!(got0, vec![10.0]);
        assert_eq!(got1, vec![20.0]);
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn message_chain_orders_block_accesses() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        // rank 0 writes block 5, then hands it to rank 1 by message:
        // the receive creates the happens-before edge, so no race
        c0.record_access(5).unwrap();
        c0.send(1, 0, vec![1.0]);
        c1.recv(0, 0).unwrap();
        assert_eq!(c1.record_access(5), Ok(()));
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn unordered_block_accesses_are_flagged() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        // both ranks touch block 7 with no message between them: wall-clock
        // order exists, happens-before order does not
        c0.record_access(7).unwrap();
        let err = c1.record_access(7).unwrap_err();
        assert_eq!(err.block, 7);
        assert_eq!((err.first_rank, err.second_rank), (0, 1));
        assert!(err.to_string().contains("block 7"));
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn same_rank_reaccess_is_not_a_race() {
        let world = ThreadWorld::new(2);
        let comms = world.into_communicators();
        comms[0].record_access(3).unwrap();
        comms[0].record_access(3).unwrap();
        assert!(comms[0].vector_clock()[0] >= 2);
    }

    #[test]
    fn pooled_send_recycles_to_sender_after_lease_drop() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            for step in 0..4u64 {
                let lease = c1.recv_buf(0, step).unwrap();
                assert_eq!(&lease[..], &[step as f64]);
                drop(lease); // storage rides the return channel to rank 0
                c1.send(0, 100 + step, Vec::new()); // ack paces the sender
            }
        });
        for step in 0..4u64 {
            let mut buf = c0.buf(1);
            buf.load(&[step as f64]);
            c0.send_buf(1, step, buf);
            c0.recv(1, 100 + step).unwrap();
        }
        assert_eq!(c0.payload_allocations(), 1, "one warm-up allocation, then reuse");
        h.join().unwrap();
    }

    #[test]
    fn detached_send_transfers_ownership_without_pool_traffic() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let column = vec![1.0, 2.0, 3.0];
        let ptr = column.as_ptr();
        c0.send(1, 0, column);
        let adopted = c1.recv(0, 0).unwrap();
        assert_eq!(adopted.as_ptr(), ptr, "the very same allocation arrives");
        assert_eq!(c1.payload_allocations(), 0);
    }

    #[test]
    fn many_ranks_ring_pass() {
        let p = 8;
        let world = ThreadWorld::new(p);
        let comms = world.into_communicators();
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let rank = c.rank();
                    let next = (rank + 1) % c.size();
                    let prev = (rank + c.size() - 1) % c.size();
                    // pass a token all the way around
                    let mut token = vec![rank as f64];
                    for round in 0..c.size() as u64 {
                        c.send(next, round, token);
                        token = c.recv(prev, round).unwrap();
                    }
                    token[0]
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // after P hops every token is back home
        for (rank, v) in results.iter().enumerate() {
            assert_eq!(*v, rank as f64);
        }
    }

    /// A two-rank chaos world with the given plan and retry knobs.
    fn chaos_pair(
        plan: FaultPlan,
        retry: RetryPolicy,
        check_finite: bool,
    ) -> (Communicator, Communicator, Arc<FaultInjector>) {
        let injector = Arc::new(FaultInjector::new(plan));
        let world = ThreadWorld::with_config(
            2,
            WorldConfig {
                recv_timeout: Duration::from_millis(10),
                retry,
                check_finite,
                fault: Some(injector.clone()),
            },
        );
        let mut comms = world.into_communicators();
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        (c0, c1, injector)
    }

    #[test]
    fn dropped_messages_are_redelivered_from_the_store() {
        let plan = FaultPlan { drop: 1.0, ..FaultPlan::default() };
        let (c0, mut c1, inj) =
            chaos_pair(plan, RetryPolicy { max_retries: 3, backoff: 2.0 }, false);
        for tag in 0..5u64 {
            c0.send(1, tag, vec![tag as f64, -1.0]);
        }
        for tag in 0..5u64 {
            assert_eq!(c1.recv(0, tag).unwrap(), vec![tag as f64, -1.0]);
        }
        let s = inj.snapshot();
        assert_eq!(s.drops, 5);
        assert_eq!(s.redeliveries, 5, "every drop recovered from the store");
    }

    #[test]
    fn duplicated_messages_are_deduplicated() {
        let plan = FaultPlan { duplicate: 1.0, ..FaultPlan::default() };
        let (c0, mut c1, inj) = chaos_pair(plan, RetryPolicy::default(), false);
        c0.send(1, 7, vec![3.5]);
        c0.send(1, 8, vec![4.5]);
        assert_eq!(c1.recv(0, 7).unwrap(), vec![3.5]);
        assert_eq!(c1.recv(0, 8).unwrap(), vec![4.5]);
        // the duplicate copies were discarded at intake or purge time
        assert!(c1.try_recv(0, 7).is_none());
        assert!(c1.try_recv(0, 8).is_none());
        assert_eq!(inj.snapshot().duplicates, 2);
    }

    #[test]
    fn delayed_messages_arrive_once_due() {
        let plan =
            FaultPlan { delay: 1.0, max_delay: Duration::from_millis(30), ..FaultPlan::default() };
        let (c0, mut c1, inj) =
            chaos_pair(plan, RetryPolicy { max_retries: 4, backoff: 2.0 }, false);
        c0.send(1, 3, vec![1.0, 2.0]);
        assert_eq!(c1.recv(0, 3).unwrap(), vec![1.0, 2.0]);
        assert_eq!(inj.snapshot().delays, 1);
    }

    #[test]
    fn corrupted_payloads_recover_clean_via_redelivery() {
        let plan = FaultPlan { corrupt: 1.0, ..FaultPlan::default() };
        let (c0, mut c1, inj) =
            chaos_pair(plan, RetryPolicy { max_retries: 2, backoff: 2.0 }, true);
        c0.send(1, 11, vec![1.0, 2.0, 3.0]);
        // the wire copy is poisoned; the store copy is clean
        assert_eq!(c1.recv(0, 11).unwrap(), vec![1.0, 2.0, 3.0]);
        let s = inj.snapshot();
        assert_eq!(s.corruptions, 1);
        assert_eq!(s.redeliveries, 1);
    }

    #[test]
    fn genuinely_poisoned_data_reports_the_element() {
        // no injected corruption: the sender's own data is non-finite, so
        // even the store copy is poisoned — must fail with the index
        let (c0, mut c1, _inj) = chaos_pair(FaultPlan::default(), RetryPolicy::default(), true);
        c0.send(1, 5, vec![1.0, f64::NAN, 3.0]);
        match c1.recv(0, 5).unwrap_err() {
            RecvError::Poisoned { rank, source, tag, index } => {
                assert_eq!((rank, source, tag, index), (1, 0, 5, 1));
            }
            other => panic!("expected poison error, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_link_times_out_with_waited_context() {
        let plan = FaultPlan::default().with_poisoned_link(0, 1);
        let (c0, mut c1, _inj) =
            chaos_pair(plan, RetryPolicy { max_retries: 1, backoff: 2.0 }, false);
        c0.send(1, 0, vec![9.0]);
        match c1.recv(0, 0).unwrap_err() {
            RecvError::Timeout { rank, source, tag, waited } => {
                assert_eq!((rank, source, tag), (1, 0, 0));
                // base window 10ms + one retried 20ms window
                assert!(waited >= Duration::from_millis(30), "waited = {waited:?}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        // the reverse edge still works
        c1.send(0, 1, vec![2.0]);
        let mut c0 = c0;
        assert_eq!(c0.recv(1, 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn armed_inert_plan_changes_nothing_and_stays_pooled() {
        let (mut c0, mut c1, inj) =
            chaos_pair(FaultPlan::default(), RetryPolicy { max_retries: 2, backoff: 2.0 }, true);
        let h = thread::spawn(move || {
            for step in 0..4u64 {
                let lease = c1.recv_buf(0, step).unwrap();
                assert_eq!(&lease[..], &[step as f64]);
                drop(lease);
                c1.send(0, 100 + step, Vec::new());
            }
        });
        for step in 0..4u64 {
            let mut buf = c0.buf(1);
            buf.load(&[step as f64]);
            c0.send_buf(1, step, buf);
            c0.recv(1, 100 + step).unwrap();
        }
        h.join().unwrap();
        assert_eq!(c0.payload_allocations(), 1, "pool discipline intact under an armed layer");
        assert_eq!(inj.snapshot().injected(), 0);
    }
}
