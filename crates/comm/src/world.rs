//! The communicator and its threaded implementation.

use crate::pool::{BufferPool, MsgBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// A point-to-point message: payload plus matching metadata.
#[derive(Debug)]
struct Envelope {
    source: usize,
    tag: u64,
    payload: MsgBuf,
    /// Sender's vector clock at the send — the happens-before piggyback.
    #[cfg(feature = "hb-tracker")]
    clock: Vec<u64>,
}

/// Errors from a blocking receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The matching message did not arrive within the timeout — almost
    /// always a schedule bug (mismatched send/recv pattern).
    Timeout {
        /// Rank that was waiting.
        rank: usize,
        /// Expected source rank.
        source: usize,
        /// Expected tag.
        tag: u64,
    },
    /// The world has been torn down (a peer hung up).
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { rank, source, tag } => {
                write!(f, "rank {rank}: timed out waiting for message (source {source}, tag {tag})")
            }
            RecvError::Disconnected => write!(f, "communicator torn down"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One rank's endpoint: send to any rank, receive tag-matched messages.
///
/// Receives match on `(source, tag)`; out-of-order arrivals are parked in a
/// local pending buffer, so any send/recv interleaving consistent with the
/// schedule is accepted.
pub struct Communicator {
    rank: usize,
    size: usize,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    pending: Vec<Envelope>,
    recv_timeout: Duration,
    pool: BufferPool,
    #[cfg(feature = "hb-tracker")]
    hb: crate::hb::RankState,
}

impl Communicator {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Borrow a cleared buffer from this rank's pool, with capacity for
    /// `capacity` elements. Fill it and pass it to
    /// [`send_buf`](Communicator::send_buf); when the receiver drops the
    /// lease the storage returns here for reuse.
    pub fn buf(&mut self, capacity: usize) -> MsgBuf {
        self.pool.take(capacity)
    }

    /// Allocation events charged to this rank's buffer pool so far. Stable
    /// across an interval ⇔ every message in that interval reused pooled
    /// (or adopted) storage.
    pub fn payload_allocations(&self) -> u64 {
        self.pool.allocations()
    }

    /// Asynchronous (buffered) send of `payload` to `dest` with `tag`.
    ///
    /// The buffer travels by reference-move, never by copy: a pooled
    /// buffer comes back to this rank's pool when the receiver drops its
    /// lease; a [detached](MsgBuf::detached) one transfers ownership of
    /// the allocation outright.
    ///
    /// # Panics
    /// Panics if `dest` is out of range. Sending to self is allowed (the
    /// message is received like any other).
    pub fn send_buf(&self, dest: usize, tag: u64, payload: MsgBuf) {
        assert!(dest < self.size, "rank {dest} out of range");
        // unbounded channel: cannot block, cannot deadlock
        self.peers[dest]
            .send(Envelope {
                source: self.rank,
                tag,
                payload,
                #[cfg(feature = "hb-tracker")]
                clock: self.hb.tick_send(),
            })
            .expect("world torn down during send");
    }

    /// Asynchronous (buffered) send of an owned `payload` — the
    /// compatibility wrapper over [`send_buf`](Communicator::send_buf).
    ///
    /// # Panics
    /// Panics if `dest` is out of range. Sending to self is allowed (the
    /// message is received like any other).
    pub fn send(&self, dest: usize, tag: u64, payload: Vec<f64>) {
        self.send_buf(dest, tag, MsgBuf::detached(payload));
    }

    /// Blocking receive of the message with exactly `(source, tag)`,
    /// returning the payload as a lease. Dropping the lease recycles the
    /// storage into the *sender's* pool; [`MsgBuf::detach`] adopts it.
    ///
    /// # Errors
    /// [`RecvError::Timeout`] if nothing matching arrives in time (a
    /// schedule bug) or [`RecvError::Disconnected`] if the world died.
    pub fn recv_buf(&mut self, source: usize, tag: u64) -> Result<MsgBuf, RecvError> {
        // check the pending buffer first
        if let Some(idx) = self.pending.iter().position(|e| e.source == source && e.tag == tag) {
            let env = self.pending.swap_remove(idx);
            #[cfg(feature = "hb-tracker")]
            self.hb.join(&env.clock);
            return Ok(env.payload);
        }
        loop {
            match self.inbox.recv_timeout(self.recv_timeout) {
                Ok(env) => {
                    if env.source == source && env.tag == tag {
                        #[cfg(feature = "hb-tracker")]
                        self.hb.join(&env.clock);
                        return Ok(env.payload);
                    }
                    self.pending.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(RecvError::Timeout { rank: self.rank, source, tag })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Disconnected),
            }
        }
    }

    /// Non-blocking receive: returns the `(source, tag)` message if it has
    /// already been delivered, `None` otherwise (never parks). Used by the
    /// overlapped executor to complete a prefetched arrival early — at the
    /// top of the step instead of its deferred point of use — whenever the
    /// message is in; correctness never depends on it succeeding.
    pub fn try_recv_buf(&mut self, source: usize, tag: u64) -> Option<MsgBuf> {
        if let Some(idx) = self.pending.iter().position(|e| e.source == source && e.tag == tag) {
            let env = self.pending.swap_remove(idx);
            #[cfg(feature = "hb-tracker")]
            self.hb.join(&env.clock);
            return Some(env.payload);
        }
        while let Ok(env) = self.inbox.try_recv() {
            if env.source == source && env.tag == tag {
                #[cfg(feature = "hb-tracker")]
                self.hb.join(&env.clock);
                return Some(env.payload);
            }
            self.pending.push(env);
        }
        None
    }

    /// Non-blocking receive returning an owned `Vec<f64>` — the detaching
    /// wrapper over [`try_recv_buf`](Communicator::try_recv_buf).
    pub fn try_recv(&mut self, source: usize, tag: u64) -> Option<Vec<f64>> {
        Some(self.try_recv_buf(source, tag)?.detach())
    }

    /// Blocking receive returning an owned `Vec<f64>` — the compatibility
    /// wrapper over [`recv_buf`](Communicator::recv_buf) (the payload is
    /// detached, so pooled storage is adopted rather than recycled).
    ///
    /// # Errors
    /// [`RecvError::Timeout`] if nothing matching arrives in time (a
    /// schedule bug) or [`RecvError::Disconnected`] if the world died.
    pub fn recv(&mut self, source: usize, tag: u64) -> Result<Vec<f64>, RecvError> {
        Ok(self.recv_buf(source, tag)?.detach())
    }

    /// Exchange with a peer: send ours, receive theirs (same tag). The
    /// common idiom of the Jacobi schedules.
    ///
    /// # Errors
    /// Propagates [`Communicator::recv`] errors.
    pub fn exchange(
        &mut self,
        peer: usize,
        tag: u64,
        payload: Vec<f64>,
    ) -> Result<Vec<f64>, RecvError> {
        self.send(peer, tag, payload);
        self.recv(peer, tag)
    }

    /// Register an access to column block `block` with the happens-before
    /// tracker, flagging it if the previous access by another rank is not
    /// ordered before this one by a message chain.
    ///
    /// # Errors
    /// [`RaceViolation`](crate::hb::RaceViolation) naming the block and the
    /// two racing ranks.
    #[cfg(feature = "hb-tracker")]
    pub fn record_access(&self, block: usize) -> Result<(), crate::hb::RaceViolation> {
        self.hb.record_access(block)
    }

    /// This rank's current vector clock (for diagnostics).
    #[cfg(feature = "hb-tracker")]
    pub fn vector_clock(&self) -> Vec<u64> {
        self.hb.snapshot()
    }
}

/// A "world": builds the communicators for `size` ranks sharing one
/// process.
pub struct ThreadWorld {
    comms: Vec<Communicator>,
}

impl ThreadWorld {
    /// Create a world of `size` ranks with the default 5-second receive
    /// timeout.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_timeout(size, Duration::from_secs(5))
    }

    /// Create a world with an explicit receive timeout (tests use short
    /// ones to exercise the failure path).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_timeout(size: usize, recv_timeout: Duration) -> Self {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        #[cfg(feature = "hb-tracker")]
        let registry = std::sync::Arc::new(crate::hb::Registry::default());
        let comms = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Communicator {
                rank,
                size,
                inbox,
                peers: senders.clone(),
                pending: Vec::new(),
                recv_timeout,
                pool: BufferPool::new(),
                #[cfg(feature = "hb-tracker")]
                hb: crate::hb::RankState::new(rank, size, registry.clone()),
            })
            .collect();
        Self { comms }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.comms.len()
    }

    /// Take the per-rank communicators (consumes the world's endpoints;
    /// call once, then move each into its thread).
    pub fn into_communicators(self) -> Vec<Communicator> {
        self.comms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            let msg = c1.recv(0, 7).unwrap();
            c1.send(0, 8, msg.iter().map(|x| x * 2.0).collect());
        });
        c0.send(1, 7, vec![1.0, 2.0]);
        let back = c0.recv(1, 8).unwrap();
        assert_eq!(back, vec![2.0, 4.0]);
        h.join().unwrap();
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 2, vec![2.0]);
        c0.send(1, 1, vec![1.0]);
        // receive in the opposite order
        assert_eq!(c1.recv(0, 1).unwrap(), vec![1.0]);
        assert_eq!(c1.recv(0, 2).unwrap(), vec![2.0]);
    }

    #[test]
    fn self_send_works() {
        let world = ThreadWorld::new(1);
        let mut comms = world.into_communicators();
        let mut c = comms.pop().unwrap();
        c.send(0, 0, vec![9.0]);
        assert_eq!(c.recv(0, 0).unwrap(), vec![9.0]);
    }

    #[test]
    fn timeout_reports_context() {
        let world = ThreadWorld::with_timeout(2, Duration::from_millis(20));
        let mut comms = world.into_communicators();
        let _c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let err = c0.recv(1, 42).unwrap_err();
        assert_eq!(err, RecvError::Timeout { rank: 0, source: 1, tag: 42 });
        assert!(err.to_string().contains("tag 42"));
    }

    #[test]
    fn exchange_is_symmetric() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || c1.exchange(0, 3, vec![10.0]).unwrap());
        let got0 = c0.exchange(1, 3, vec![20.0]).unwrap();
        let got1 = h.join().unwrap();
        assert_eq!(got0, vec![10.0]);
        assert_eq!(got1, vec![20.0]);
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn message_chain_orders_block_accesses() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        // rank 0 writes block 5, then hands it to rank 1 by message:
        // the receive creates the happens-before edge, so no race
        c0.record_access(5).unwrap();
        c0.send(1, 0, vec![1.0]);
        c1.recv(0, 0).unwrap();
        assert_eq!(c1.record_access(5), Ok(()));
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn unordered_block_accesses_are_flagged() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        // both ranks touch block 7 with no message between them: wall-clock
        // order exists, happens-before order does not
        c0.record_access(7).unwrap();
        let err = c1.record_access(7).unwrap_err();
        assert_eq!(err.block, 7);
        assert_eq!((err.first_rank, err.second_rank), (0, 1));
        assert!(err.to_string().contains("block 7"));
    }

    #[cfg(feature = "hb-tracker")]
    #[test]
    fn same_rank_reaccess_is_not_a_race() {
        let world = ThreadWorld::new(2);
        let comms = world.into_communicators();
        comms[0].record_access(3).unwrap();
        comms[0].record_access(3).unwrap();
        assert!(comms[0].vector_clock()[0] >= 2);
    }

    #[test]
    fn pooled_send_recycles_to_sender_after_lease_drop() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            for step in 0..4u64 {
                let lease = c1.recv_buf(0, step).unwrap();
                assert_eq!(&lease[..], &[step as f64]);
                drop(lease); // storage rides the return channel to rank 0
                c1.send(0, 100 + step, Vec::new()); // ack paces the sender
            }
        });
        for step in 0..4u64 {
            let mut buf = c0.buf(1);
            buf.load(&[step as f64]);
            c0.send_buf(1, step, buf);
            c0.recv(1, 100 + step).unwrap();
        }
        assert_eq!(c0.payload_allocations(), 1, "one warm-up allocation, then reuse");
        h.join().unwrap();
    }

    #[test]
    fn detached_send_transfers_ownership_without_pool_traffic() {
        let world = ThreadWorld::new(2);
        let mut comms = world.into_communicators();
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let column = vec![1.0, 2.0, 3.0];
        let ptr = column.as_ptr();
        c0.send(1, 0, column);
        let adopted = c1.recv(0, 0).unwrap();
        assert_eq!(adopted.as_ptr(), ptr, "the very same allocation arrives");
        assert_eq!(c1.payload_allocations(), 0);
    }

    #[test]
    fn many_ranks_ring_pass() {
        let p = 8;
        let world = ThreadWorld::new(p);
        let comms = world.into_communicators();
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let rank = c.rank();
                    let next = (rank + 1) % c.size();
                    let prev = (rank + c.size() - 1) % c.size();
                    // pass a token all the way around
                    let mut token = vec![rank as f64];
                    for round in 0..c.size() as u64 {
                        c.send(next, round, token);
                        token = c.recv(prev, round).unwrap();
                    }
                    token[0]
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // after P hops every token is back home
        for (rank, v) in results.iter().enumerate() {
            assert_eq!(*v, rank as f64);
        }
    }
}
