//! Per-phase traffic accounting: channel loads and contention.

use crate::routing::{route, Channel};
use crate::topology::Topology;
use std::collections::HashMap;

/// One message: a column (or block) moving between leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Source leaf.
    pub src: usize,
    /// Destination leaf.
    pub dst: usize,
    /// Payload size in words.
    pub words: u64,
}

/// Accumulated per-channel loads for one communication phase (all the
/// messages between two computation steps, injected simultaneously).
#[derive(Debug, Clone, Default)]
pub struct ChannelLoads {
    loads: HashMap<Channel, u64>,
}

impl ChannelLoads {
    /// Words crossing `channel` this phase.
    pub fn load(&self, channel: Channel) -> u64 {
        self.loads.get(&channel).copied().unwrap_or(0)
    }

    /// All loaded channels with their word counts.
    pub fn iter(&self) -> impl Iterator<Item = (Channel, u64)> + '_ {
        self.loads.iter().map(|(&c, &w)| (c, w))
    }

    /// Total words crossing channels at `level` (both directions).
    pub fn level_words(&self, level: usize) -> u64 {
        self.loads.iter().filter(|(c, _)| c.level == level).map(|(_, &w)| w).sum()
    }

    /// The busiest channel's load in words, or 0 if the phase is empty.
    pub fn max_load(&self) -> u64 {
        self.loads.values().copied().max().unwrap_or(0)
    }
}

/// One communication phase: a set of simultaneous messages on a topology.
#[derive(Debug, Clone)]
pub struct Phase {
    messages: Vec<Message>,
    max_level: usize,
}

impl Phase {
    /// Build a phase from messages, validating leaves against `topo`.
    ///
    /// # Panics
    /// Panics if a message references a leaf outside the topology.
    pub fn new(topo: &Topology, messages: Vec<Message>) -> Self {
        let mut max_level = 0;
        for m in &messages {
            assert!(m.src < topo.leaves() && m.dst < topo.leaves(), "leaf out of range");
            max_level = max_level.max(crate::routing::comm_level(m.src, m.dst));
        }
        Self { messages, max_level }
    }

    /// The messages in this phase.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The highest communication level any message reaches — the paper's
    /// level-r of the phase.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Recover the message buffer, so callers that build phases in a loop
    /// can recycle its allocation.
    #[must_use]
    pub fn into_messages(self) -> Vec<Message> {
        self.messages
    }

    /// Total message count (excluding src == dst no-ops).
    pub fn message_count(&self) -> usize {
        self.messages.iter().filter(|m| m.src != m.dst).count()
    }

    /// Total words moved, weighted by hops (a words×hops volume metric).
    pub fn word_hops(&self) -> u64 {
        self.messages
            .iter()
            .map(|m| 2 * crate::routing::comm_level(m.src, m.dst) as u64 * m.words)
            .sum()
    }

    /// Accumulate per-channel loads.
    pub fn channel_loads(&self) -> ChannelLoads {
        let mut loads = ChannelLoads::default();
        for m in &self.messages {
            if m.src == m.dst {
                continue;
            }
            for c in route(m.src, m.dst).channels {
                *loads.loads.entry(c).or_insert(0) += m.words;
            }
        }
        loads
    }

    /// The **contention factor** on `topo`: how much slower the tree's
    /// *interior* is than the phase's busiest *endpoint*.
    ///
    /// Every message necessarily serializes through its source and
    /// destination leaf channels (level 1), so that injection time is the
    /// unavoidable floor of the phase. Contention — in the sense of the
    /// CM-5 measurements \[13\] and §5's "no contention will occur
    /// anywhere in the tree" guarantee — happens when messages from
    /// *different* sources pile up on a shared interior channel and make it
    /// drain slower than that floor:
    ///
    /// ```text
    /// contention = max_{level ≥ 2 channels} (load/capacity)
    ///            / max_{level 1 channels}   (load/capacity)
    /// ```
    ///
    /// A value ≤ 1 means the interior is never the bottleneck
    /// (contention-free); `k > 1` means some interior wire serializes `k×`
    /// longer than any endpoint. Returns 0 for an empty phase or one that
    /// never leaves level 1.
    pub fn contention(&self, topo: &Topology) -> f64 {
        let loads = self.channel_loads();
        let endpoint = loads
            .iter()
            .filter(|(c, _)| c.level == 1)
            .map(|(_, w)| w as f64 / topo.capacity(1) as f64)
            .fold(0.0, f64::max);
        let interior = loads
            .iter()
            .filter(|(c, _)| c.level >= 2)
            .map(|(c, w)| w as f64 / topo.capacity(c.level) as f64)
            .fold(0.0, f64::max);
        if endpoint == 0.0 {
            0.0
        } else {
            interior / endpoint
        }
    }

    /// Histogram of message counts by communication level; `hist[r]` counts
    /// level-r messages (index 0 = co-located no-ops).
    pub fn level_histogram(&self, topo: &Topology) -> Vec<usize> {
        let mut hist = vec![0usize; topo.levels() + 1];
        for m in &self.messages {
            hist[crate::routing::comm_level(m.src, m.dst)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn topo8() -> Topology {
        Topology::new(TopologyKind::PerfectFatTree, 8)
    }

    #[test]
    fn empty_phase() {
        let p = Phase::new(&topo8(), vec![]);
        assert_eq!(p.max_level(), 0);
        assert_eq!(p.message_count(), 0);
        assert_eq!(p.contention(&topo8()), 0.0);
        assert_eq!(p.word_hops(), 0);
    }

    #[test]
    fn sibling_exchange_loads_level_one_only() {
        let p = Phase::new(
            &topo8(),
            vec![Message { src: 0, dst: 1, words: 10 }, Message { src: 1, dst: 0, words: 10 }],
        );
        let loads = p.channel_loads();
        assert_eq!(loads.level_words(1), 40); // 2 msgs × (1 up + 1 down) × 10
        assert_eq!(loads.level_words(2), 0);
        assert_eq!(p.max_level(), 1);
    }

    #[test]
    fn contention_on_binary_tree_root() {
        // 4 messages all crossing the root of an 8-leaf binary tree, going
        // to 4 distinct destinations: the 4 up-routes share only partially,
        // but each up channel at level 3 has capacity 1.
        let topo = Topology::new(TopologyKind::BinaryTree, 8);
        let msgs = vec![
            Message { src: 0, dst: 4, words: 5 },
            Message { src: 1, dst: 5, words: 5 },
            Message { src: 2, dst: 6, words: 5 },
            Message { src: 3, dst: 7, words: 5 },
        ];
        let p = Phase::new(&topo, msgs.clone());
        // all four ascend through the single level-3 up channel of node 0
        assert!(p.contention(&topo) >= 4.0);
        // the same phase on a perfect fat-tree: level-3 capacity 4 -> free
        let fat = topo8();
        let p2 = Phase::new(&fat, msgs);
        assert!(p2.contention(&fat) <= 1.0);
    }

    #[test]
    fn level_histogram_counts() {
        let p = Phase::new(
            &topo8(),
            vec![
                Message { src: 0, dst: 0, words: 1 },
                Message { src: 0, dst: 1, words: 1 },
                Message { src: 0, dst: 2, words: 1 },
                Message { src: 0, dst: 4, words: 1 },
            ],
        );
        assert_eq!(p.level_histogram(&topo8()), vec![1, 1, 1, 1]);
    }

    #[test]
    fn word_hops_scale_with_level() {
        let p = Phase::new(&topo8(), vec![Message { src: 0, dst: 7, words: 3 }]);
        assert_eq!(p.word_hops(), 2 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "leaf out of range")]
    fn rejects_bad_leaf() {
        let _ = Phase::new(&topo8(), vec![Message { src: 0, dst: 9, words: 1 }]);
    }
}
