//! Message routing: the up-over-down path through the tree.
//!
//! A message from one leaf to another ascends to the lowest common
//! ancestor and descends again. The paper calls a communication whose
//! message ascends `r` levels a *level-r communication* (§3); sibling
//! leaves are level 1.

/// A directed channel in the tree, identified by its level (1-based, from
/// the leaves) and the index of the subtree (node) whose parent edge it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    /// `true` for the child→parent (up) direction.
    pub up: bool,
    /// Level of the edge, 1-based.
    pub level: usize,
    /// Index of the child node of this edge among the `leaves >> (level-1)`
    /// nodes at level `level − 1`.
    pub node: usize,
}

/// The route of one message: the ascent level and the channels traversed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The paper's communication level `r`: number of levels ascended
    /// (0 when source equals destination).
    pub level: usize,
    /// The channels used, up-channels first, then down-channels.
    pub channels: Vec<Channel>,
}

/// The level-`r` of a communication between two leaves: position of the
/// highest differing address bit, plus one.
pub fn comm_level(a: usize, b: usize) -> usize {
    if a == b {
        0
    } else {
        (usize::BITS - (a ^ b).leading_zeros()) as usize
    }
}

/// Compute the up-over-down route between two leaves.
pub fn route(src: usize, dst: usize) -> Route {
    let r = comm_level(src, dst);
    let mut channels = Vec::with_capacity(2 * r);
    for k in 1..=r {
        channels.push(Channel { up: true, level: k, node: src >> (k - 1) });
    }
    for k in (1..=r).rev() {
        channels.push(Channel { up: false, level: k, node: dst >> (k - 1) });
    }
    Route { level: r, channels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_route_is_empty() {
        let r = route(3, 3);
        assert_eq!(r.level, 0);
        assert!(r.channels.is_empty());
    }

    #[test]
    fn sibling_route_is_level_one() {
        let r = route(0, 1);
        assert_eq!(r.level, 1);
        assert_eq!(
            r.channels,
            vec![Channel { up: true, level: 1, node: 0 }, Channel { up: false, level: 1, node: 1 }]
        );
    }

    #[test]
    fn cross_root_route() {
        // leaves 0 and 7 in an 8-leaf tree: ascend 3 levels
        let r = route(0, 7);
        assert_eq!(r.level, 3);
        assert_eq!(r.channels.len(), 6);
        // up path: nodes 0, 0, 0 at levels 1, 2, 3
        assert_eq!(r.channels[0], Channel { up: true, level: 1, node: 0 });
        assert_eq!(r.channels[1], Channel { up: true, level: 2, node: 0 });
        assert_eq!(r.channels[2], Channel { up: true, level: 3, node: 0 });
        // down path: nodes 1, 3, 7 at levels 3, 2, 1
        assert_eq!(r.channels[3], Channel { up: false, level: 3, node: 1 });
        assert_eq!(r.channels[4], Channel { up: false, level: 2, node: 3 });
        assert_eq!(r.channels[5], Channel { up: false, level: 1, node: 7 });
    }

    #[test]
    fn comm_level_matches_definition() {
        assert_eq!(comm_level(0, 1), 1);
        assert_eq!(comm_level(2, 3), 1);
        assert_eq!(comm_level(1, 2), 2);
        assert_eq!(comm_level(3, 4), 3);
        assert_eq!(comm_level(0, 15), 4);
        assert_eq!(comm_level(5, 5), 0);
    }

    #[test]
    fn route_is_symmetric_in_level() {
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(route(a, b).level, route(b, a).level);
            }
        }
    }

    #[test]
    fn up_and_down_channel_counts_match() {
        let r = route(2, 13);
        let ups = r.channels.iter().filter(|c| c.up).count();
        let downs = r.channels.len() - ups;
        assert_eq!(ups, downs);
        assert_eq!(ups, r.level);
    }
}
