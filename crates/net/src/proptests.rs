//! Property-based tests of routing and traffic accounting.

#![cfg(test)]

use crate::routing::{comm_level, route};
use crate::topology::{Topology, TopologyKind};
use crate::traffic::{Message, Phase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn route_lengths_match_level(a in 0usize..256, b in 0usize..256) {
        let r = route(a, b);
        prop_assert_eq!(r.channels.len(), 2 * r.level);
        prop_assert_eq!(r.level, comm_level(a, b));
    }

    #[test]
    fn comm_level_is_a_metric_like_quantity(a in 0usize..128, b in 0usize..128, c in 0usize..128) {
        // symmetry
        prop_assert_eq!(comm_level(a, b), comm_level(b, a));
        // identity
        prop_assert_eq!(comm_level(a, a), 0);
        // ultrametric triangle inequality: the LCA level of (a, c) is at
        // most the max of (a, b) and (b, c)
        prop_assert!(comm_level(a, c) <= comm_level(a, b).max(comm_level(b, c)));
    }

    #[test]
    fn route_up_channels_belong_to_source_subtree(a in 0usize..64, b in 0usize..64) {
        prop_assume!(a != b);
        let r = route(a, b);
        for ch in &r.channels {
            if ch.up {
                // the channel's child node contains the source leaf
                prop_assert_eq!(ch.node, a >> (ch.level - 1));
            } else {
                prop_assert_eq!(ch.node, b >> (ch.level - 1));
            }
        }
    }

    #[test]
    fn aggregate_bandwidth_monotone_families(e in 1u32..8) {
        let leaves = 1usize << e;
        let fat = Topology::new(TopologyKind::PerfectFatTree, leaves);
        let cm5 = Topology::new(TopologyKind::Cm5, leaves);
        let bin = Topology::new(TopologyKind::BinaryTree, leaves);
        for k in 1..=fat.levels() {
            // perfect >= cm5 >= binary at every level
            prop_assert!(fat.capacity(k) >= cm5.capacity(k));
            prop_assert!(cm5.capacity(k) >= bin.capacity(k));
        }
    }

    #[test]
    fn contention_never_negative_and_zero_iff_local(
        srcs in proptest::collection::vec(0usize..8, 1..6),
        dsts in proptest::collection::vec(0usize..8, 1..6),
    ) {
        let n = srcs.len().min(dsts.len());
        let msgs: Vec<Message> = srcs
            .iter()
            .zip(dsts.iter())
            .take(n)
            .map(|(&s, &d)| Message { src: s, dst: d, words: 4 })
            .collect();
        let topo = Topology::new(TopologyKind::BinaryTree, 8);
        let phase = Phase::new(&topo, msgs.clone());
        let c = phase.contention(&topo);
        prop_assert!(c >= 0.0);
        let all_local = msgs.iter().all(|m| comm_level(m.src, m.dst) <= 1);
        if all_local {
            prop_assert_eq!(c, 0.0);
        }
    }

    #[test]
    fn word_hops_consistent_with_histogram(
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..10),
    ) {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 16);
        let msgs: Vec<Message> =
            pairs.iter().map(|&(s, d)| Message { src: s, dst: d, words: 3 }).collect();
        let phase = Phase::new(&topo, msgs);
        let hist = phase.level_histogram(&topo);
        let expect: u64 = hist
            .iter()
            .enumerate()
            .map(|(lvl, &count)| 2 * lvl as u64 * 3 * count as u64)
            .sum();
        prop_assert_eq!(phase.word_hops(), expect);
    }

    #[test]
    fn channel_loads_conserve_words(
        pairs in proptest::collection::vec((0usize..8, 0usize..8), 1..8),
    ) {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 8);
        let msgs: Vec<Message> =
            pairs.iter().map(|&(s, d)| Message { src: s, dst: d, words: 5 }).collect();
        let phase = Phase::new(&topo, msgs.clone());
        let loads = phase.channel_loads();
        let total: u64 = loads.iter().map(|(_, w)| w).sum();
        let expect: u64 = msgs
            .iter()
            .map(|m| 2 * comm_level(m.src, m.dst) as u64 * m.words)
            .sum();
        prop_assert_eq!(total, expect);
    }
}
