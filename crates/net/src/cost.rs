//! Timing model: turning channel loads into phase times.
//!
//! The model is the standard postal/LogP-flavoured abstraction used for
//! fat-tree machines: a phase of simultaneous messages finishes when the
//! busiest channel has drained. Channel drain time is
//! `words / capacity × beta`; add a fixed per-phase startup `alpha` and a
//! per-hop switch latency `hop × 2r_max`. Absolute constants are
//! deliberately parameterized — the experiments compare *shapes* across
//! orderings and topologies, not 1993 hardware microseconds.

use crate::topology::Topology;
use crate::traffic::Phase;

/// Cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-phase startup latency (charged once if any message moves).
    pub alpha: f64,
    /// Transfer time per word per unit capacity.
    pub beta: f64,
    /// Per-hop switch latency.
    pub hop: f64,
    /// Time per floating-point operation (for streaming compute: long
    /// column traversals that miss cache on every pass).
    pub gamma: f64,
    /// Time per floating-point operation for cache-blocked panel kernels
    /// (Gram build, `[X Y]·W` panel product, compact-WY updates). On real
    /// hardware these run closer to peak than streaming rotations, which
    /// is why the Gram meeting beats pairwise despite similar flop counts.
    pub gamma_panel: f64,
    /// Per-step bookkeeping overhead of the overlapped (split-rotation)
    /// distributed schedule: posting early receives, harvesting
    /// `try_recv`, and scheduling the A/V halves separately. Overlap only
    /// pays when the serialization it hides exceeds this.
    pub nu: f64,
}

impl Default for CostModel {
    /// A ratio set loosely inspired by CM-5-class machines: startup ≫ per
    /// word ≫ per flop, with panel flops cheaper than streaming flops.
    fn default() -> Self {
        CostModel { alpha: 100.0, beta: 1.0, hop: 5.0, gamma: 0.05, gamma_panel: 0.02, nu: 40.0 }
    }
}

/// The cost breakdown of one communication phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// Total phase time.
    pub time: f64,
    /// The serialization component (busiest channel drain).
    pub serialization: f64,
    /// The latency component (startup + hops).
    pub latency: f64,
    /// Contention factor of the phase (see [`Phase::contention`]).
    pub contention: f64,
    /// Highest communication level used.
    pub max_level: usize,
}

impl CostModel {
    /// Time for one communication phase on `topo`.
    pub fn phase_cost(&self, topo: &Topology, phase: &Phase) -> PhaseCost {
        if phase.message_count() == 0 {
            return PhaseCost {
                time: 0.0,
                serialization: 0.0,
                latency: 0.0,
                contention: 0.0,
                max_level: 0,
            };
        }
        let loads = phase.channel_loads();
        let serialization = loads
            .iter()
            .map(|(c, w)| w as f64 / topo.capacity(c.level) as f64 * self.beta)
            .fold(0.0, f64::max);
        let latency = self.alpha + self.hop * (2 * phase.max_level()) as f64;
        PhaseCost {
            time: serialization + latency,
            serialization,
            latency,
            contention: phase.contention(topo),
            max_level: phase.max_level(),
        }
    }

    /// Time for one computation step: every processor rotates one column
    /// pair of length `m` in parallel. A Hestenes rotation costs three
    /// fused dot products (`6m` flops) plus the two-column update (`8m`
    /// flops).
    pub fn rotation_cost(&self, m: usize) -> f64 {
        self.gamma * (14 * m) as f64
    }

    /// Compute cost of one *pairwise* blocked meeting: two width-`c`
    /// panels of column length `m` meet and every cross/intra pair among
    /// the `2c` columns is orthogonalized by a streamed Hestenes rotation
    /// (`14m` flops), plus the `8·v_rows` V-update per pair when singular
    /// vectors are accumulated (`v_rows = 0` otherwise).
    pub fn pairwise_meeting_cost(&self, c: usize, m: usize, v_rows: usize) -> f64 {
        let k = 2 * c;
        let pairs = (k * (k - 1) / 2) as f64;
        self.gamma * pairs * (14 * m + 8 * v_rows) as f64
    }

    /// Compute cost of one *Gram* blocked meeting over the same `2c`
    /// columns: build the `2c×2c` Gram matrix (`k²m` flops), run an
    /// in-cache Jacobi on it (O(k³), charged at the streaming rate — it
    /// is tiny), then apply the accumulated rotation as one panel product
    /// to A (and V when `v_rows > 0`), `2k²·rows` flops each. Panel flops
    /// are charged at `gamma_panel` only while the working set fits the
    /// cache (`in_cache`); an oversized panel degrades to streaming rate,
    /// which is exactly what the hierarchical-blocking level exists to
    /// avoid.
    pub fn gram_meeting_cost(&self, c: usize, m: usize, v_rows: usize, in_cache: bool) -> f64 {
        let k = (2 * c) as f64;
        let panel_flops = k * k * m as f64 + 2.0 * k * k * (m + v_rows) as f64;
        let incache_flops = 4.0 * k * k * k;
        let g_panel = if in_cache { self.gamma_panel } else { self.gamma };
        g_panel * panel_flops + self.gamma * incache_flops
    }

    /// Time for one full schedule step that moves `phase` and computes
    /// `compute` time of work per processor. Without overlap the step is
    /// strictly serial: communicate, then compute. With the overlapped
    /// schedule the serialization drains behind the compute (only the
    /// larger of the two is paid, after the unhideable latency), but the
    /// step is charged the per-step overlap bookkeeping `nu`.
    pub fn step_cost(&self, topo: &Topology, phase: &Phase, compute: f64, overlap: bool) -> f64 {
        let pc = self.phase_cost(topo, phase);
        if overlap {
            pc.latency + compute.max(pc.serialization) + self.nu
        } else {
            pc.time + compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;
    use crate::traffic::Message;

    fn model() -> CostModel {
        CostModel { alpha: 10.0, beta: 1.0, hop: 2.0, gamma: 0.1, gamma_panel: 0.04, nu: 4.0 }
    }

    /// One far exchange phase on a `p`-leaf fat-tree: leaf `i` swaps
    /// `words`-word columns with leaf `i + p/2`.
    fn far_exchange(p: usize, words: u64) -> (Topology, Phase) {
        let topo = Topology::new(TopologyKind::PerfectFatTree, p);
        let msgs = (0..p / 2)
            .flat_map(|i| {
                [
                    Message { src: i, dst: i + p / 2, words },
                    Message { src: i + p / 2, dst: i, words },
                ]
            })
            .collect();
        let phase = Phase::new(&topo, msgs);
        (topo, phase)
    }

    #[test]
    fn empty_phase_is_free() {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 8);
        let phase = Phase::new(&topo, vec![]);
        let c = model().phase_cost(&topo, &phase);
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn sibling_exchange_cost() {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 8);
        let phase = Phase::new(
            &topo,
            vec![Message { src: 0, dst: 1, words: 8 }, Message { src: 1, dst: 0, words: 8 }],
        );
        let c = model().phase_cost(&topo, &phase);
        // busiest channel: 8 words / capacity 1 = 8; latency 10 + 2*2
        assert_eq!(c.serialization, 8.0);
        assert_eq!(c.latency, 14.0);
        assert_eq!(c.time, 22.0);
        assert_eq!(c.max_level, 1);
    }

    #[test]
    fn contention_slows_binary_tree() {
        let topo_fat = Topology::new(TopologyKind::PerfectFatTree, 8);
        let topo_bin = Topology::new(TopologyKind::BinaryTree, 8);
        let msgs = vec![
            Message { src: 0, dst: 4, words: 8 },
            Message { src: 1, dst: 5, words: 8 },
            Message { src: 2, dst: 6, words: 8 },
            Message { src: 3, dst: 7, words: 8 },
        ];
        let fat_cost = model().phase_cost(&topo_fat, &Phase::new(&topo_fat, msgs.clone()));
        let bin_cost = model().phase_cost(&topo_bin, &Phase::new(&topo_bin, msgs));
        assert!(
            bin_cost.time > 2.0 * fat_cost.serialization,
            "binary tree should serialize root traffic: {bin_cost:?} vs {fat_cost:?}"
        );
        assert!(bin_cost.contention > fat_cost.contention);
    }

    #[test]
    fn rotation_cost_scales_with_m() {
        let m = model();
        assert!(m.rotation_cost(200) > m.rotation_cost(100));
        assert_eq!(m.rotation_cost(100), 0.1 * 1400.0);
    }

    #[test]
    fn default_model_orders_constants() {
        let d = CostModel::default();
        assert!(d.alpha > d.beta);
        assert!(d.beta > d.gamma);
        assert!(d.gamma_panel < d.gamma, "panel flops must be cheaper than streaming flops");
        assert!(d.nu < d.alpha);
    }

    /// PhaseCost is monotone in the column length m (message words).
    #[test]
    fn phase_cost_monotone_in_m() {
        let mdl = model();
        let mut last = 0.0;
        for m in [64, 128, 256, 512, 1024] {
            let (topo, phase) = far_exchange(8, m);
            let c = mdl.phase_cost(&topo, &phase);
            assert!(c.time >= last, "phase time must not shrink as m grows (m={m})");
            assert!(c.serialization > 0.0);
            last = c.time;
        }
    }

    /// PhaseCost is monotone in P: a far exchange over more leaves climbs
    /// higher in the tree, so both latency and total time grow.
    #[test]
    fn phase_cost_monotone_in_p() {
        let mdl = model();
        let mut last_time = 0.0;
        let mut last_level = 0;
        for p in [4, 8, 16, 32] {
            let (topo, phase) = far_exchange(p, 128);
            let c = mdl.phase_cost(&topo, &phase);
            assert!(c.time >= last_time, "phase time must not shrink as P grows (p={p})");
            assert!(c.max_level > last_level, "far exchange must climb with P (p={p})");
            last_time = c.time;
            last_level = c.max_level;
        }
    }

    /// Meeting costs are monotone in the block width c (and therefore in
    /// n at fixed P, since c = n / 2P).
    #[test]
    fn meeting_costs_monotone_in_c() {
        let mdl = model();
        let mut last_pw = 0.0;
        let mut last_gr = 0.0;
        for c in [1, 2, 4, 8, 16] {
            let pw = mdl.pairwise_meeting_cost(c, 256, 64);
            let gr = mdl.gram_meeting_cost(c, 256, 64, true);
            assert!(pw > last_pw, "pairwise cost must grow with c (c={c})");
            assert!(gr > last_gr, "gram cost must grow with c (c={c})");
            last_pw = pw;
            last_gr = gr;
        }
    }

    /// In-cache Gram panels are charged the panel rate; once the panel
    /// falls out of cache the advantage over pairwise must shrink.
    #[test]
    fn gram_in_cache_beats_out_of_cache() {
        let mdl = model();
        let hot = mdl.gram_meeting_cost(8, 4096, 4096, true);
        let cold = mdl.gram_meeting_cost(8, 4096, 4096, false);
        assert!(hot < cold);
        let pw = mdl.pairwise_meeting_cost(8, 4096, 4096);
        assert!(hot < pw, "in-cache gram must beat pairwise: {hot} vs {pw}");
    }

    /// Overlap pays only when the serialization it hides exceeds the
    /// per-step bookkeeping `nu` — exactly the small-P regression the
    /// tuner exists to fix.
    #[test]
    fn overlap_step_cost_crossover() {
        let mdl = model();
        // Fat messages: serialization dominates, overlap hides it.
        let (topo, fat) = far_exchange(8, 4096);
        let compute = mdl.rotation_cost(4096);
        assert!(
            mdl.step_cost(&topo, &fat, compute, true) < mdl.step_cost(&topo, &fat, compute, false),
            "overlap must win when the hidden serialization exceeds nu"
        );
        // Thin messages (zero-copy-like): nothing to hide, nu makes
        // overlap a strict loss.
        let (topo, thin) = far_exchange(8, 1);
        assert!(
            mdl.step_cost(&topo, &thin, compute, true)
                > mdl.step_cost(&topo, &thin, compute, false),
            "overlap must lose when there is no serialization to hide"
        );
    }
}
