//! Timing model: turning channel loads into phase times.
//!
//! The model is the standard postal/LogP-flavoured abstraction used for
//! fat-tree machines: a phase of simultaneous messages finishes when the
//! busiest channel has drained. Channel drain time is
//! `words / capacity × beta`; add a fixed per-phase startup `alpha` and a
//! per-hop switch latency `hop × 2r_max`. Absolute constants are
//! deliberately parameterized — the experiments compare *shapes* across
//! orderings and topologies, not 1993 hardware microseconds.

use crate::topology::Topology;
use crate::traffic::Phase;

/// Cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-phase startup latency (charged once if any message moves).
    pub alpha: f64,
    /// Transfer time per word per unit capacity.
    pub beta: f64,
    /// Per-hop switch latency.
    pub hop: f64,
    /// Time per floating-point operation (for compute phases).
    pub gamma: f64,
}

impl Default for CostModel {
    /// A ratio set loosely inspired by CM-5-class machines: startup ≫ per
    /// word ≫ per flop.
    fn default() -> Self {
        CostModel { alpha: 100.0, beta: 1.0, hop: 5.0, gamma: 0.05 }
    }
}

/// The cost breakdown of one communication phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// Total phase time.
    pub time: f64,
    /// The serialization component (busiest channel drain).
    pub serialization: f64,
    /// The latency component (startup + hops).
    pub latency: f64,
    /// Contention factor of the phase (see [`Phase::contention`]).
    pub contention: f64,
    /// Highest communication level used.
    pub max_level: usize,
}

impl CostModel {
    /// Time for one communication phase on `topo`.
    pub fn phase_cost(&self, topo: &Topology, phase: &Phase) -> PhaseCost {
        if phase.message_count() == 0 {
            return PhaseCost {
                time: 0.0,
                serialization: 0.0,
                latency: 0.0,
                contention: 0.0,
                max_level: 0,
            };
        }
        let loads = phase.channel_loads();
        let serialization = loads
            .iter()
            .map(|(c, w)| w as f64 / topo.capacity(c.level) as f64 * self.beta)
            .fold(0.0, f64::max);
        let latency = self.alpha + self.hop * (2 * phase.max_level()) as f64;
        PhaseCost {
            time: serialization + latency,
            serialization,
            latency,
            contention: phase.contention(topo),
            max_level: phase.max_level(),
        }
    }

    /// Time for one computation step: every processor rotates one column
    /// pair of length `m` in parallel. A Hestenes rotation costs three
    /// fused dot products (`6m` flops) plus the two-column update (`8m`
    /// flops).
    pub fn rotation_cost(&self, m: usize) -> f64 {
        self.gamma * (14 * m) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;
    use crate::traffic::Message;

    fn model() -> CostModel {
        CostModel { alpha: 10.0, beta: 1.0, hop: 2.0, gamma: 0.1 }
    }

    #[test]
    fn empty_phase_is_free() {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 8);
        let phase = Phase::new(&topo, vec![]);
        let c = model().phase_cost(&topo, &phase);
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn sibling_exchange_cost() {
        let topo = Topology::new(TopologyKind::PerfectFatTree, 8);
        let phase = Phase::new(
            &topo,
            vec![Message { src: 0, dst: 1, words: 8 }, Message { src: 1, dst: 0, words: 8 }],
        );
        let c = model().phase_cost(&topo, &phase);
        // busiest channel: 8 words / capacity 1 = 8; latency 10 + 2*2
        assert_eq!(c.serialization, 8.0);
        assert_eq!(c.latency, 14.0);
        assert_eq!(c.time, 22.0);
        assert_eq!(c.max_level, 1);
    }

    #[test]
    fn contention_slows_binary_tree() {
        let topo_fat = Topology::new(TopologyKind::PerfectFatTree, 8);
        let topo_bin = Topology::new(TopologyKind::BinaryTree, 8);
        let msgs = vec![
            Message { src: 0, dst: 4, words: 8 },
            Message { src: 1, dst: 5, words: 8 },
            Message { src: 2, dst: 6, words: 8 },
            Message { src: 3, dst: 7, words: 8 },
        ];
        let fat_cost = model().phase_cost(&topo_fat, &Phase::new(&topo_fat, msgs.clone()));
        let bin_cost = model().phase_cost(&topo_bin, &Phase::new(&topo_bin, msgs));
        assert!(
            bin_cost.time > 2.0 * fat_cost.serialization,
            "binary tree should serialize root traffic: {bin_cost:?} vs {fat_cost:?}"
        );
        assert!(bin_cost.contention > fat_cost.contention);
    }

    #[test]
    fn rotation_cost_scales_with_m() {
        let m = model();
        assert!(m.rotation_cost(200) > m.rotation_cost(100));
        assert_eq!(m.rotation_cost(100), 0.1 * 1400.0);
    }

    #[test]
    fn default_model_orders_constants() {
        let d = CostModel::default();
        assert!(d.alpha > d.beta);
        assert!(d.beta > d.gamma);
    }
}
