//! Tree topologies and channel capacities.

use std::fmt;

/// The topology families studied in the paper (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Perfect binary fat-tree: capacity `2^(k-1)` at level `k`, so the
    /// aggregate bandwidth per level is constant.
    PerfectFatTree,
    /// Ordinary binary tree — "skinny all over": capacity 1 at every level.
    BinaryTree,
    /// Perfect up to (and including) the cut level, constant above it.
    SkinnyAbove(u32),
    /// The CM-5-like tree: the binary-tree equivalent of a 4-way tree whose
    /// channel capacity doubles per 4-way level — capacity `2^(k/2)` at
    /// binary level `k` (1, 2, 2, 4, 4, 8, …).
    Cm5,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::PerfectFatTree => write!(f, "perfect-fat-tree"),
            TopologyKind::BinaryTree => write!(f, "binary-tree"),
            TopologyKind::SkinnyAbove(cut) => write!(f, "skinny-above-{cut}"),
            TopologyKind::Cm5 => write!(f, "cm5-tree"),
        }
    }
}

/// A complete binary tree of processors with per-level channel capacities.
///
/// Levels are counted from the leaves up, as in the paper: the channels
/// connecting leaves to their parents are *level 1*; the channels into the
/// root are level `L = log2(leaves)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    leaves: usize,
    /// `capacities[k-1]` = wires per channel at level `k`, `k = 1..=L`.
    capacities: Vec<u64>,
}

impl Topology {
    /// Build a topology of the given kind over `leaves` processors.
    ///
    /// # Panics
    /// Panics if `leaves` is not a power of two or is less than 2.
    pub fn new(kind: TopologyKind, leaves: usize) -> Self {
        assert!(leaves >= 2 && leaves.is_power_of_two(), "leaves must be a power of two >= 2");
        let levels = leaves.trailing_zeros();
        let capacities = (1..=levels)
            .map(|k| match kind {
                TopologyKind::PerfectFatTree => 1u64 << (k - 1),
                TopologyKind::BinaryTree => 1,
                TopologyKind::SkinnyAbove(cut) => 1u64 << (k.min(cut).saturating_sub(1)),
                TopologyKind::Cm5 => 1u64 << (k / 2),
            })
            .collect();
        Self { kind, leaves, capacities }
    }

    /// The kind this topology was built as.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of leaf processors.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Number of levels `L = log2(leaves)`.
    pub fn levels(&self) -> usize {
        self.capacities.len()
    }

    /// Channel capacity (wires) at level `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the number of levels.
    pub fn capacity(&self, k: usize) -> u64 {
        assert!(k >= 1 && k <= self.levels(), "level {k} out of range");
        self.capacities[k - 1]
    }

    /// Number of channels (per direction) at level `k`: one per node whose
    /// parent edge sits at that level, i.e. `leaves / 2^(k-1)`.
    pub fn channels_at(&self, k: usize) -> usize {
        assert!(k >= 1 && k <= self.levels(), "level {k} out of range");
        self.leaves >> (k - 1)
    }

    /// Aggregate bandwidth (total wires, per direction) at level `k`.
    ///
    /// Constant across levels for a perfect fat-tree; decaying for skinny
    /// trees — the quantity whose decay causes contention.
    pub fn aggregate_bandwidth(&self, k: usize) -> u64 {
        self.capacity(k) * self.channels_at(k) as u64
    }

    /// Whether this topology is skinny (some level has less aggregate
    /// bandwidth than level 1).
    pub fn is_skinny(&self) -> bool {
        let base = self.aggregate_bandwidth(1);
        (1..=self.levels()).any(|k| self.aggregate_bandwidth(k) < base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fat_tree_capacities_double() {
        let t = Topology::new(TopologyKind::PerfectFatTree, 16);
        assert_eq!(t.levels(), 4);
        assert_eq!(t.capacity(1), 1);
        assert_eq!(t.capacity(2), 2);
        assert_eq!(t.capacity(3), 4);
        assert_eq!(t.capacity(4), 8);
        // aggregate bandwidth constant
        for k in 1..=4 {
            assert_eq!(t.aggregate_bandwidth(k), 16);
        }
        assert!(!t.is_skinny());
    }

    #[test]
    fn binary_tree_is_skinny_all_over() {
        let t = Topology::new(TopologyKind::BinaryTree, 8);
        for k in 1..=3 {
            assert_eq!(t.capacity(k), 1);
        }
        assert_eq!(t.aggregate_bandwidth(1), 8);
        assert_eq!(t.aggregate_bandwidth(3), 2);
        assert!(t.is_skinny());
    }

    #[test]
    fn skinny_above_cut() {
        let t = Topology::new(TopologyKind::SkinnyAbove(2), 16);
        assert_eq!(t.capacity(1), 1);
        assert_eq!(t.capacity(2), 2);
        assert_eq!(t.capacity(3), 2); // frozen above the cut
        assert_eq!(t.capacity(4), 2);
        assert!(t.is_skinny());
    }

    #[test]
    fn cm5_grows_sqrt2_per_level() {
        // paper §2: equivalent binary capacities 1, 2, 2, 4, 4, 8, ...
        let t = Topology::new(TopologyKind::Cm5, 64);
        let caps: Vec<u64> = (1..=6).map(|k| t.capacity(k)).collect();
        assert_eq!(caps, vec![1, 2, 2, 4, 4, 8]);
        assert!(t.is_skinny());
    }

    #[test]
    fn channel_counts_halve_per_level() {
        let t = Topology::new(TopologyKind::PerfectFatTree, 8);
        assert_eq!(t.channels_at(1), 8);
        assert_eq!(t.channels_at(2), 4);
        assert_eq!(t.channels_at(3), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Topology::new(TopologyKind::BinaryTree, 6);
    }

    #[test]
    fn kind_display() {
        assert_eq!(TopologyKind::Cm5.to_string(), "cm5-tree");
        assert_eq!(TopologyKind::SkinnyAbove(3).to_string(), "skinny-above-3");
        assert_eq!(TopologyKind::PerfectFatTree.to_string(), "perfect-fat-tree");
        assert_eq!(TopologyKind::BinaryTree.to_string(), "binary-tree");
    }
}
