//! Tree routing-network simulator: fat-trees, skinny fat-trees, and the
//! CM-5-like tree (paper §2).
//!
//! A fat-tree (Leiserson \[9\]) is a complete binary tree with processors
//! at the leaves and a pair of directed channels (up/down) per edge. The
//! *capacity* of a channel is its number of wires; in a **perfect** binary
//! fat-tree the capacity doubles per level, so aggregate bandwidth is
//! constant across levels. A tree is **skinny** when some channels grow
//! slower than that:
//!
//! * an ordinary binary tree is "skinny all over" (capacity 1 everywhere);
//! * the paper's second kind is skinny only *above* a cut level;
//! * the CM-5's 4-way tree is equivalent to a binary fat-tree whose
//!   capacities increase by ×2 every *two* binary levels (≈ √2 per level).
//!
//! [`Topology`] describes capacities, [`route`](routing::route) computes
//! the up-over-down path of a message (§3's "level-r communication"),
//! [`Phase`](traffic::Phase) accumulates per-channel loads for a set of
//! simultaneous messages, and [`CostModel`](cost::CostModel) turns loads
//! into time, exposing the contention metric §5's hybrid ordering is
//! designed to zero out.
//!
//! ```
//! use treesvd_net::{route, Topology, TopologyKind, Phase, Message};
//!
//! // sibling leaves talk at level 1; leaves 0 and 7 cross the root of an
//! // 8-leaf tree (level 3)
//! assert_eq!(route(0, 1).level, 1);
//! assert_eq!(route(0, 7).level, 3);
//!
//! // four messages crossing the root contend on a plain binary tree but
//! // not on a perfect fat-tree
//! let msgs: Vec<Message> =
//!     (0..4).map(|i| Message { src: i, dst: i + 4, words: 8 }).collect();
//! let fat = Topology::new(TopologyKind::PerfectFatTree, 8);
//! let bin = Topology::new(TopologyKind::BinaryTree, 8);
//! assert!(Phase::new(&fat, msgs.clone()).contention(&fat) <= 1.0);
//! assert!(Phase::new(&bin, msgs).contention(&bin) > 1.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
#[cfg(test)]
mod proptests;
pub mod routing;
pub mod topology;
pub mod traffic;

pub use cost::{CostModel, PhaseCost};
pub use routing::{route, Route};
pub use topology::{Topology, TopologyKind};
pub use traffic::{ChannelLoads, Message, Phase};
