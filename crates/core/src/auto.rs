//! Auto-tuned execution: [`SvdOptions::auto`] and the [`auto_svd`]
//! dispatch entry — the production default path.
//!
//! The tuner ([`treesvd_tune`]) selects a full execution config (driver,
//! ordering, kernel, block width, threads, transport, overlap, QR
//! crossover, hierarchical blocking) by minimizing the calibrated cost
//! model; this module maps that [`TunePlan`] onto [`SvdOptions`] and
//! runs the planned driver. The mapping is *transparent*: an auto run is
//! bitwise-identical to handing the same options to the same driver
//! explicitly (pinned by a property test), and every tuner choice still
//! flows through the existing gates — schedules verify, overlap engages
//! only behind the analyzer's deadlock-freedom proof, certificates
//! validate. The tuner requests; the gates decide.

use crate::blocked::{blocked_svd, BlockedOptions, BlockedRun};
use crate::driver::HestenesSvd;
use crate::options::{BlockKernel, HierBlocking, SvdError, SvdOptions};
use crate::result::Svd;
use treesvd_matrix::Matrix;
use treesvd_tune::{plan_for, DriverSel, KernelSel, TunePlan, TuneProblem};

impl SvdOptions {
    /// Auto-tuned options for an `m × n` problem with the production
    /// defaults (vectors on, host parallelism from
    /// [`par::num_threads`](treesvd_sim::par::num_threads), perfect
    /// fat-tree topology). First call per shape-class runs the one-shot
    /// calibration probes and the model; repeats are allocation-free
    /// cache hits. See [`SvdOptions::auto_for`] to vary the problem
    /// statement and [`auto_svd`] to also dispatch the planned driver.
    #[must_use]
    pub fn auto(m: usize, n: usize) -> Self {
        Self::auto_for(&TuneProblem::new(m, n))
    }

    /// Auto-tuned options for an explicit problem statement.
    #[must_use]
    pub fn auto_for(problem: &TuneProblem) -> Self {
        options_from_plan(&plan_for(problem), problem)
    }
}

/// Materialize a tuner plan as explicit options (the same struct a caller
/// would build by hand — auto runs are bitwise-identical to explicit
/// ones by construction).
#[must_use]
pub fn options_from_plan(plan: &TunePlan, problem: &TuneProblem) -> SvdOptions {
    SvdOptions::default()
        .with_ordering(plan.ordering)
        .with_topology(problem.topology)
        .with_vectors(problem.vectors)
        .with_block_kernel(match plan.kernel {
            KernelSel::Pairwise => BlockKernel::Pairwise,
            KernelSel::Gram => BlockKernel::Gram,
        })
        .with_overlap(plan.overlap)
        .with_threads(Some(plan.threads as usize))
        .with_qr_frontend(plan.qr_frontend)
        .with_qr_crossover(plan.qr_crossover)
        .with_hier_blocking(if plan.hier_cols == 0 {
            HierBlocking::Auto
        } else {
            HierBlocking::Cols(plan.hier_cols as usize)
        })
}

/// Result of an auto-tuned run: the decomposition plus the plan that
/// produced it (transparency — callers can see every tuner decision).
#[derive(Debug)]
pub struct AutoRun {
    /// The decomposition of the input.
    pub svd: Svd,
    /// Sweeps performed by the planned driver.
    pub sweeps: usize,
    /// The plan that was executed.
    pub plan: TunePlan,
    /// Whether the QR front-end engaged on this shape.
    pub qr_frontend: bool,
}

/// Compute the SVD of `a` on the auto-tuned path with the production
/// defaults. Equivalent to [`auto_svd_for`] with
/// [`TuneProblem::new`]`(a.rows(), a.cols())`.
///
/// # Errors
/// As the planned driver ([`HestenesSvd::compute`],
/// [`HestenesSvd::compute_distributed`](crate::HestenesSvd::compute_distributed),
/// or [`blocked_svd`]).
pub fn auto_svd(a: &Matrix) -> Result<AutoRun, SvdError> {
    auto_svd_for(a, &TuneProblem::new(a.rows(), a.cols()))
}

/// Compute the SVD of `a` on the auto-tuned path for an explicit problem
/// statement (the shape fields of `problem` should match `a`; the plan
/// is keyed on them).
///
/// # Errors
/// As the planned driver.
pub fn auto_svd_for(a: &Matrix, problem: &TuneProblem) -> Result<AutoRun, SvdError> {
    let plan = plan_for(problem);
    let options = options_from_plan(&plan, problem);
    run_plan(a, &plan, options)
}

/// Dispatch explicit options to the plan's driver — shared by the auto
/// path and the transparency property test (which hand-builds the same
/// options and must get bitwise-identical output).
pub fn run_plan(a: &Matrix, plan: &TunePlan, options: SvdOptions) -> Result<AutoRun, SvdError> {
    match plan.driver {
        DriverSel::Blocked { processors } => {
            let opts = BlockedOptions { processors: processors.max(1) as usize, svd: options };
            let BlockedRun { svd, sweeps, qr_frontend, .. } = blocked_svd(a, &opts)?;
            Ok(AutoRun { svd, sweeps, plan: *plan, qr_frontend })
        }
        DriverSel::Distributed => {
            let run = HestenesSvd::new(options).compute_distributed(a)?;
            Ok(AutoRun {
                svd: run.svd,
                sweeps: run.sweeps,
                plan: *plan,
                qr_frontend: run.qr_frontend,
            })
        }
        DriverSel::Simulated => {
            let run = HestenesSvd::new(options).compute(a)?;
            Ok(AutoRun {
                svd: run.svd,
                sweeps: run.sweeps,
                plan: *plan,
                qr_frontend: run.qr_frontend,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    #[test]
    fn auto_options_reflect_the_plan() {
        let problem = TuneProblem::new(512, 64).with_processors(4);
        let plan = plan_for(&problem);
        let opts = SvdOptions::auto_for(&problem);
        assert_eq!(opts.overlap, Some(plan.overlap));
        assert_eq!(opts.threads, Some(plan.threads as usize));
        assert!(opts.qr_frontend);
        assert_eq!(opts.qr_crossover, plan.qr_crossover);
        assert_eq!(
            opts.block_kernel,
            match plan.kernel {
                KernelSel::Pairwise => BlockKernel::Pairwise,
                KernelSel::Gram => BlockKernel::Gram,
            }
        );
    }

    #[test]
    fn auto_svd_solves_and_reconstructs() {
        let sigma: Vec<f64> = (1..=24).rev().map(|k| k as f64).collect();
        let a = generate::with_singular_values(96, &sigma, 7);
        let run = auto_svd_for(&a, &TuneProblem::new(96, 24).with_processors(4)).unwrap();
        assert!(run.sweeps > 0);
        let r = treesvd_matrix::checks::reconstruction_residual(
            &a,
            &run.svd.u,
            &run.svd.sigma,
            &run.svd.v,
        );
        assert!(r < 1e-9, "residual {r}");
        for (c, e) in run.svd.sigma.iter().zip(sigma.iter()) {
            assert!((c - e).abs() < 1e-8);
        }
    }

    #[test]
    fn auto_svd_matches_the_explicit_config_bitwise() {
        // the transparency contract on one deterministic point (the
        // property test in proptests.rs fuzzes shapes)
        let sigma: Vec<f64> = (1..=16).rev().map(|k| k as f64 * 0.5).collect();
        let a = generate::with_singular_values(160, &sigma, 99);
        let problem = TuneProblem::new(160, 16).with_processors(4);
        let auto = auto_svd_for(&a, &problem).unwrap();
        let plan = plan_for(&problem);
        let explicit = run_plan(&a, &plan, options_from_plan(&plan, &problem)).unwrap();
        assert_eq!(auto.svd.sigma, explicit.svd.sigma, "sigma must be bitwise-identical");
        assert_eq!(auto.svd.u, explicit.svd.u);
        assert_eq!(auto.svd.v, explicit.svd.v);
        assert_eq!(auto.sweeps, explicit.sweeps);
    }

    #[test]
    fn wide_inputs_run_through_the_same_plan() {
        let sigma: Vec<f64> = (1..=12).rev().map(|k| k as f64).collect();
        let a = generate::with_singular_values(48, &sigma, 3);
        let at = a.transpose();
        let tall = auto_svd_for(&a, &TuneProblem::new(48, 12).with_processors(2)).unwrap();
        let wide = auto_svd_for(&at, &TuneProblem::new(12, 48).with_processors(2)).unwrap();
        for (x, y) in tall.svd.sigma.iter().zip(wide.svd.sigma.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
