//! The SVD result type and orthonormal completion.

use treesvd_matrix::{Matrix, MatrixError};

/// A thin singular value decomposition `A = U · diag(σ) · Vᵀ` of an
/// `m × n` matrix (`m ≥ n`): `U` is `m × n` with orthonormal columns,
/// `σ` has length `n` (sorted according to the driver's sort mode), and
/// `V` is `n × n` orthogonal.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n`.
    pub u: Matrix,
    /// Singular values.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × n`.
    pub v: Matrix,
    /// Numerical rank: the number of singular values above the driver's
    /// rank tolerance (`‖A‖ · n · ε` scaled).
    pub rank: usize,
}

impl Svd {
    /// Relative reconstruction residual `‖A − UΣVᵀ‖_F / ‖A‖_F`.
    pub fn residual(&self, a: &Matrix) -> f64 {
        treesvd_matrix::checks::reconstruction_residual(a, &self.u, &self.sigma, &self.v)
    }

    /// `max(‖UᵀU − I‖_F, ‖VᵀV − I‖_F)` — orthogonality of the factors.
    pub fn orthogonality(&self) -> f64 {
        treesvd_matrix::checks::orthogonality_residual(&self.u)
            .max(treesvd_matrix::checks::orthogonality_residual(&self.v))
    }

    /// The best rank-`k` approximation `U_k Σ_k V_kᵀ` (requires sorted σ).
    ///
    /// # Errors
    /// Returns a [`MatrixError`] if `k` is 0 or exceeds `σ.len()`.
    pub fn truncate(&self, k: usize) -> Result<Matrix, MatrixError> {
        if k == 0 || k > self.sigma.len() {
            return Err(MatrixError::IndexOutOfBounds { index: k, bound: self.sigma.len() + 1 });
        }
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n)?;
        for t in 0..k {
            let ut = self.u.col(t);
            let vt = self.v.col(t);
            let s = self.sigma[t];
            for (j, &vtj) in vt.iter().enumerate() {
                let col = out.col_mut(j);
                let w = s * vtj;
                for (o, &u) in col.iter_mut().zip(ut.iter()) {
                    *o += u * w;
                }
            }
        }
        Ok(out)
    }
}

/// Replace (near-)zero columns of `q` with unit vectors orthonormal to all
/// other columns, via modified Gram–Schmidt over candidate axis vectors.
///
/// Used to complete `U` and `V` when the matrix is rank-deficient (or was
/// padded): columns whose singular value is zero carry no direction of
/// their own but the factors must still be orthonormal.
///
/// # Panics
/// Panics if completion is impossible (`q` has more columns than rows).
pub fn complete_orthonormal(q: &mut Matrix, zero_cols: &[usize]) {
    let m = q.rows();
    let n = q.cols();
    assert!(m >= n, "cannot complete a wide matrix to orthonormal columns");
    for &j in zero_cols {
        let mut best: Option<Vec<f64>> = None;
        let mut best_norm = 0.0_f64;
        // try axis vectors; keep the one with the largest residual after
        // orthogonalization for stability
        for axis in 0..m {
            let mut cand = vec![0.0; m];
            cand[axis] = 1.0;
            for other in 0..n {
                if other == j {
                    continue;
                }
                // not-yet-completed zero columns are zero vectors, so
                // orthogonalizing against them is a harmless no-op
                let col = q.col(other);
                let proj = treesvd_matrix::ops::dot(&cand, col);
                treesvd_matrix::ops::axpy(-proj, col, &mut cand);
            }
            let norm = treesvd_matrix::ops::norm2(&cand);
            if norm > best_norm {
                best_norm = norm;
                best = Some(cand);
            }
            if best_norm > 0.7 {
                break; // good enough, avoid O(m²) scans
            }
        }
        let mut cand = best.expect("completion candidate exists");
        let norm = treesvd_matrix::ops::norm2(&cand);
        assert!(norm > 1e-8, "orthonormal completion failed");
        treesvd_matrix::ops::scal(1.0 / norm, &mut cand);
        // one re-orthogonalization pass for numerical hygiene
        for other in 0..n {
            if other == j {
                continue;
            }
            let col = q.col(other).to_vec();
            let proj = treesvd_matrix::ops::dot(&cand, &col);
            treesvd_matrix::ops::axpy(-proj, &col, &mut cand);
        }
        let norm = treesvd_matrix::ops::norm2(&cand);
        treesvd_matrix::ops::scal(1.0 / norm, &mut cand);
        q.set_col(j, &cand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    #[test]
    fn truncate_reproduces_full_matrix_at_full_rank() {
        let sigma = [3.0, 2.0, 1.0];
        let a = generate::with_singular_values(5, &sigma, 3);
        // build an exact SVD by construction
        let u = generate::random_orthogonal(5, 100);
        let v = generate::random_orthogonal(3, 101);
        let mut um = Matrix::zeros(5, 3).unwrap();
        for j in 0..3 {
            let src = u.col(j).to_vec();
            um.set_col(j, &src);
        }
        let d = Matrix::diagonal(5, &sigma).unwrap();
        let a2 = u.matmul(&d).unwrap().matmul(&v.transpose()).unwrap();
        let svd = Svd { u: um, sigma: sigma.to_vec(), v: v.clone(), rank: 3 };
        let full = svd.truncate(3).unwrap();
        assert!(full.sub(&a2).unwrap().frobenius_norm() < 1e-12);
        let _ = a;
    }

    #[test]
    fn truncate_rejects_bad_k() {
        let svd = Svd {
            u: Matrix::identity(3, 2).unwrap(),
            sigma: vec![1.0, 0.5],
            v: Matrix::identity(2, 2).unwrap(),
            rank: 2,
        };
        assert!(svd.truncate(0).is_err());
        assert!(svd.truncate(3).is_err());
        assert!(svd.truncate(2).is_ok());
    }

    #[test]
    fn truncation_error_is_tail_sigma() {
        // ‖A − A_k‖_F = sqrt(σ_{k+1}² + …) for the best rank-k approximation
        let sigma = [4.0, 2.0, 1.0];
        let a = generate::with_singular_values(6, &sigma, 9);
        let run = crate::HestenesSvd::new(crate::SvdOptions::default()).compute(&a).unwrap();
        let a1 = run.svd.truncate(1).unwrap();
        let err = a.sub(&a1).unwrap().frobenius_norm();
        let expect = (4.0_f64 + 1.0).sqrt(); // sqrt(2² + 1²)
        assert!((err - expect).abs() < 1e-8, "err {err} vs {expect}");
    }

    #[test]
    fn completion_fills_zero_columns() {
        let mut q = Matrix::zeros(4, 3).unwrap();
        // columns 0 and 2 orthonormal, column 1 zero
        q.set(0, 0, 1.0);
        q.set(1, 2, 1.0);
        complete_orthonormal(&mut q, &[1]);
        assert!(treesvd_matrix::checks::orthogonality_residual(&q) < 1e-12);
    }

    #[test]
    fn completion_of_multiple_columns() {
        let mut q = Matrix::zeros(5, 4).unwrap();
        q.set(2, 0, 1.0);
        complete_orthonormal(&mut q, &[1, 2, 3]);
        assert!(treesvd_matrix::checks::orthogonality_residual(&q) < 1e-12);
    }

    #[test]
    fn svd_quality_metrics() {
        let a = generate::with_singular_values(8, &[5.0, 3.0, 1.0, 0.5], 17);
        let run = crate::HestenesSvd::new(crate::SvdOptions::default()).compute(&a).unwrap();
        assert!(run.svd.residual(&a) < 1e-12);
        assert!(run.svd.orthogonality() < 1e-12);
        assert_eq!(run.svd.rank, 4);
    }
}
