//! Property-based tests of the blocked (Schreiber) driver (proptest).
//!
//! The Gram meeting kernel and the pairwise oracle realize the same block
//! meeting two different ways; these properties pin down that the choice
//! is unobservable in the results across random shapes, machine sizes,
//! padded/odd block sizes, and rank-deficient inputs.

#![cfg(test)]

use crate::blocked::{blocked_svd, BlockedOptions};
use crate::options::BlockKernel;
use crate::SvdOptions;
use proptest::prelude::*;
use treesvd_matrix::{checks, generate};

fn opts_with(processors: usize, kernel: BlockKernel) -> BlockedOptions {
    BlockedOptions { processors, svd: SvdOptions::default().with_block_kernel(kernel) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both kernels produce the same spectrum (and valid factors) on random
    /// matrices, across machine sizes and block paddings — including odd
    /// column counts that force padded, uneven final blocks.
    #[test]
    fn gram_and_pairwise_agree_on_random_input(
        n in 4usize..20,
        extra_rows in 0usize..12,
        p_log in 0u32..3,
        seed in 0u64..1000,
    ) {
        let m = n + extra_rows;
        let procs = 1usize << p_log; // 1, 2, 4: 2P stays a power of two
        let a = generate::random_uniform(m, n, seed);
        let pw = blocked_svd(&a, &opts_with(procs, BlockKernel::Pairwise)).unwrap();
        let gr = blocked_svd(&a, &opts_with(procs, BlockKernel::Gram)).unwrap();
        prop_assert!(
            checks::spectrum_distance(&pw.svd.sigma, &gr.svd.sigma) < 1e-9,
            "sigma mismatch: n={} m={} P={} seed={}", n, m, procs, seed
        );
        prop_assert!(gr.svd.residual(&a) < 1e-9);
        prop_assert!(gr.svd.orthogonality() < 1e-9);
        prop_assert!(checks::is_nonincreasing(&gr.svd.sigma));
        // V agrees up to sign wherever the spectrum is well separated
        let sig = &gr.svd.sigma;
        for j in 0..n {
            let separated = (0..n).all(|i| {
                i == j || (sig[j] - sig[i]).abs() > 1e-5 * sig[0].max(1.0)
            });
            if sig[j] > 1e-8 && separated {
                let d = treesvd_matrix::ops::dot(pw.svd.v.col(j), gr.svd.v.col(j)).abs();
                prop_assert!(d > 1.0 - 1e-6, "V col {} disagrees: |dot|={}", j, d);
            }
        }
    }

    /// The distributed executor is bitwise-deterministic across its
    /// communication strategies: the zero-copy transport with send-ahead
    /// overlap, the non-overlapped zero-copy transport, and the
    /// synchronous simulated oracle all produce identical singular values,
    /// identical singular vectors, and identical sweep counts — over
    /// random shapes, random processor counts, and three orderings with
    /// very different movement patterns.
    #[test]
    fn overlapped_distributed_run_is_bitwise_identical_to_oracle(
        half_n in 2usize..9,
        extra_rows in 1usize..16,
        seed in 0u64..1000,
    ) {
        use treesvd_orderings::OrderingKind;
        let n = 2 * half_n; // P = half_n ranks; tree orderings pad internally
        let m = n + extra_rows;
        let a = generate::random_uniform(m, n, seed);
        for kind in [OrderingKind::NewRing, OrderingKind::FatTree, OrderingKind::Hybrid] {
            let solver = |overlap: bool| {
                crate::HestenesSvd::new(
                    SvdOptions::default().with_ordering(kind).with_overlap(overlap),
                )
            };
            let oracle = solver(true).compute(&a).unwrap();
            let overlapped = solver(true).compute_distributed(&a).unwrap();
            let plain = solver(false).compute_distributed(&a).unwrap();
            for (label, run) in [("overlap", &overlapped), ("no-overlap", &plain)] {
                prop_assert_eq!(
                    run.sweeps, oracle.sweeps,
                    "{}: sweep count diverged ({} n={} m={} seed={})",
                    label, kind, n, m, seed
                );
                prop_assert_eq!(
                    &run.svd.sigma, &oracle.svd.sigma,
                    "{}: sigma not bitwise-identical ({} n={} m={} seed={})",
                    label, kind, n, m, seed
                );
                prop_assert_eq!(
                    &run.svd.u, &oracle.svd.u,
                    "{}: U not bitwise-identical ({} n={} m={} seed={})",
                    label, kind, n, m, seed
                );
                prop_assert_eq!(
                    &run.svd.v, &oracle.svd.v,
                    "{}: V not bitwise-identical ({} n={} m={} seed={})",
                    label, kind, n, m, seed
                );
            }
        }
    }

    /// Tuner transparency: `SvdOptions::auto()` output is bitwise-identical
    /// to handing the *same* config to the *same* driver explicitly — the
    /// tuner selects, it never perturbs. Fuzzes shapes (including tall
    /// aspect ratios that engage the QR front-end), processor budgets, and
    /// the vectors flag.
    #[test]
    fn auto_is_bitwise_identical_to_the_explicit_config(
        n in 4usize..24,
        aspect in 1usize..12,
        p in 1usize..6,
        vectors_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        use crate::auto::{auto_svd_for, options_from_plan, run_plan};
        use treesvd_tune::{plan_for, TuneProblem};
        let vectors = vectors_bit == 1;
        let m = n * aspect + 1;
        let a = generate::random_uniform(m, n, seed);
        let problem = TuneProblem::new(m, n).with_processors(p).with_vectors(vectors);
        let auto = auto_svd_for(&a, &problem).unwrap();
        // hand-build the exact same options the plan implies and dispatch
        // the same driver explicitly
        let plan = plan_for(&problem);
        let explicit = run_plan(&a, &plan, options_from_plan(&plan, &problem)).unwrap();
        prop_assert_eq!(auto.sweeps, explicit.sweeps);
        prop_assert_eq!(&auto.svd.sigma, &explicit.svd.sigma,
            "sigma not bitwise-identical: m={} n={} p={} seed={}", m, n, p, seed);
        prop_assert_eq!(&auto.svd.u, &explicit.svd.u,
            "U not bitwise-identical: m={} n={} p={} seed={}", m, n, p, seed);
        prop_assert_eq!(&auto.svd.v, &explicit.svd.v,
            "V not bitwise-identical: m={} n={} p={} seed={}", m, n, p, seed);
        // and the auto path actually solves the problem (reconstruction
        // needs the factors, so only when vectors are accumulated)
        if vectors {
            prop_assert!(auto.svd.residual(&a) < 1e-8);
        }
    }

    /// Rank-deficient panels (zero directions inside blocks) do not split
    /// the kernels apart either: same rank, same spectrum.
    #[test]
    fn gram_and_pairwise_agree_on_rank_deficient_input(
        n in 6usize..18,
        rank_cut in 1usize..5,
        seed in 0u64..1000,
    ) {
        let rank = n - rank_cut.min(n - 1);
        let a = generate::rank_deficient(n + 8, n, rank, seed);
        let pw = blocked_svd(&a, &opts_with(2, BlockKernel::Pairwise)).unwrap();
        let gr = blocked_svd(&a, &opts_with(2, BlockKernel::Gram)).unwrap();
        prop_assert_eq!(pw.svd.rank, rank);
        prop_assert_eq!(gr.svd.rank, rank);
        prop_assert!(
            checks::spectrum_distance(&pw.svd.sigma, &gr.svd.sigma) < 1e-9,
            "sigma mismatch: n={} rank={} seed={}", n, rank, seed
        );
    }
}
