//! The parallel Hestenes SVD driver.
//!
//! Orchestrates: shape normalization (transpose wide inputs, pad the
//! column count to the ordering's requirement with zero columns),
//! distribution over the simulated machine, sweeping until the paper's
//! termination criterion holds (a complete sweep with no rotation and no
//! interchange), and extraction of `U`, `σ`, `V` in index order with
//! rank handling.

use crate::options::{OrderingChoice, SvdError, SvdOptions};
use crate::result::{complete_orthonormal, Svd};
use treesvd_matrix::Matrix;
use treesvd_net::Topology;
use treesvd_orderings::{JacobiOrdering, OrderingError, OrderingKind};
use treesvd_sim::{
    execute_program_with_scratch, ColumnStore, ExecConfig, ExecScratch, Machine, SortMode,
    SweepStats,
};

/// A completed SVD run: the decomposition plus everything the experiments
/// need to know about how it went.
#[derive(Debug)]
pub struct SvdRun {
    /// The decomposition (of the original, unpadded, untransposed matrix).
    pub svd: Svd,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Whether the termination criterion was met within `max_sweeps`.
    pub converged: bool,
    /// Per-sweep execution statistics (rotations, couplings, simulated
    /// times, contention).
    pub sweep_stats: Vec<SweepStats>,
    /// Total simulated machine time (compute + communication).
    pub simulated_time: f64,
    /// Whether the result was transposed back (input had `m < n`).
    pub transposed: bool,
    /// Padded column count actually used by the ordering.
    pub padded_n: usize,
    /// Exact off-diagonal measure before the first sweep and after each
    /// sweep (empty unless `track_off` was set).
    pub off_history: Vec<f64>,
    /// Recovery summary of a distributed run (injected faults, retries,
    /// restarts, ladder descents). `None` on the simulated path.
    pub health: Option<treesvd_sim::HealthReport>,
    /// Whether the tall-skinny QR front-end engaged: the sweeps ran on
    /// the `n×n` factor `R` and `U` was back-transformed through `Q`
    /// (see [`SvdOptions::qr_frontend`]).
    pub qr_frontend: bool,
}

impl SvdRun {
    /// Per-sweep maximum normalized couplings — the convergence trace
    /// (ultimately quadratic, §1).
    pub fn coupling_history(&self) -> Vec<f64> {
        self.sweep_stats.iter().map(|s| s.max_coupling).collect()
    }

    /// Total rotations applied across all sweeps.
    pub fn total_rotations(&self) -> usize {
        self.sweep_stats.iter().map(|s| s.rotations).sum()
    }
}

/// The parallel one-sided Jacobi SVD solver.
#[derive(Debug)]
pub struct HestenesSvd {
    options: SvdOptions,
}

impl HestenesSvd {
    /// Create a solver with the given options.
    pub fn new(options: SvdOptions) -> Self {
        Self { options }
    }

    /// Convenience: solver with default options and the given ordering.
    pub fn with_ordering(kind: OrderingKind) -> Self {
        Self::new(SvdOptions::default().with_ordering(kind))
    }

    /// Compute the SVD of `a`.
    ///
    /// Accepts any shape: wide matrices are transposed internally
    /// (`A = UΣVᵀ ⇔ Aᵀ = VΣUᵀ`), and the column count is padded with zero
    /// columns up to the ordering's size requirement (even, or a power of
    /// two for the tree orderings); padding contributes exact zero
    /// singular values that are stripped before returning.
    ///
    /// # Errors
    /// [`SvdError::EmptyMatrix`] for degenerate shapes,
    /// [`SvdError::Ordering`] if no padded size suits the ordering, and
    /// [`SvdError::NoConvergence`] if `max_sweeps` is exhausted.
    pub fn compute(&self, a: &Matrix) -> Result<SvdRun, SvdError> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(SvdError::EmptyMatrix);
        }
        if a.rows() >= a.cols() {
            self.compute_tall(a, false, true)
        } else {
            let at = a.transpose();
            let mut run = self.compute_tall(&at, true, true)?;
            // A = U Σ Vᵀ with Aᵀ = V Σ Uᵀ: swap the factors back
            std::mem::swap(&mut run.svd.u, &mut run.svd.v);
            Ok(run)
        }
    }

    /// Instantiate the configured ordering for `n_padded` columns.
    fn build_ordering(&self, n_padded: usize) -> Result<Box<dyn JacobiOrdering>, OrderingError> {
        match &self.options.ordering {
            OrderingChoice::Kind(k) => k.build(n_padded),
            OrderingChoice::Custom(f) => f(n_padded),
        }
    }

    /// Build the ordering and, when `verify_schedule` is set, gate it
    /// through the static schedule verifier before any matrix data is
    /// touched. With a certificate cache configured, a warm run consumes
    /// the cached [`ProofCertificate`](treesvd_analyze::ProofCertificate)
    /// — witness validation instead of re-proving; mismatch on a matching
    /// key is a hard error, version skew silently re-proves.
    fn checked_ordering(&self, n_padded: usize) -> Result<Box<dyn JacobiOrdering>, SvdError> {
        let ordering = self.build_ordering(n_padded)?;
        if self.options.verify_schedule {
            match &self.options.certificate_cache {
                Some(cache) => {
                    cache.verify_or_prove(
                        ordering.as_ref(),
                        &treesvd_analyze::AnalysisOptions::default(),
                        true,
                        true,
                    )?;
                }
                None => treesvd_analyze::verify_ordering_schedule(ordering.as_ref())?,
            }
        }
        Ok(ordering)
    }

    /// The padded size for `n` columns: the smallest size ≥ max(n, 4) the
    /// ordering accepts (try even sizes, then powers of two).
    fn padded_size(&self, n: usize) -> Result<usize, OrderingError> {
        let start = n.max(4);
        // even candidate
        let even = start + start % 2;
        if self.build_ordering(even).is_ok() {
            return Ok(even);
        }
        let pow2 = start.next_power_of_two();
        self.build_ordering(pow2).map(|_| pow2)
    }

    /// Run the chosen Jacobi driver on `A = QR`'s small factor `R`, then
    /// back-transform `U ← Q·U_R` (the tall-skinny front-end; see
    /// [`crate::tall`]). The inner solve runs with the front-end barred:
    /// `R` is square, and the guard must hold even for degenerate
    /// crossover settings.
    fn frontend_run(
        &self,
        a: &Matrix,
        transposed: bool,
        distributed: bool,
    ) -> Result<SvdRun, SvdError> {
        let qr = crate::tall::factor(a, &self.options)?;
        let mut run = if distributed {
            self.compute_distributed_inner(qr.r(), false)?
        } else {
            self.compute_tall(qr.r(), false, false)?
        };
        run.svd.u = crate::tall::back_transform(&qr, &run.svd.u, crate::tall::lanes(&self.options));
        run.transposed = transposed;
        run.qr_frontend = true;
        Ok(run)
    }

    fn compute_tall(
        &self,
        a: &Matrix,
        transposed: bool,
        allow_frontend: bool,
    ) -> Result<SvdRun, SvdError> {
        let (m, n) = a.shape();
        debug_assert!(m >= n);
        if allow_frontend && crate::tall::engages(&self.options, m, n) {
            return self.frontend_run(a, transposed, false);
        }
        let n_pad = self.padded_size(n)?;
        let ordering = self.checked_ordering(n_pad)?;

        // distribute columns (zero columns as padding)
        let mut columns = a.clone().into_columns();
        columns.resize(n_pad, vec![0.0; m]);
        let mut store = ColumnStore::from_columns(columns, self.options.vectors);

        // ring orderings accept any even n, so the processor count may not
        // be a power of two; embed the processors in the smallest complete
        // binary tree that holds them (extra leaves stay idle)
        let leaves = (n_pad / 2).next_power_of_two().max(2);
        let machine = Machine::new(Topology::new(self.options.topology, leaves), self.options.cost);
        let threshold = self.options.threshold.unwrap_or(n_pad as f64 * f64::EPSILON);
        let config = ExecConfig {
            threshold,
            sort: self.options.sort,
            cached_norms: self.options.cached_norms,
            serial_cutoff: self.options.serial_cutoff,
            threads: self.options.threads.unwrap_or(0),
        };

        // the layout cycle repeats with the ordering's restore period, so
        // the sweep programs can be generated once and reused
        let period = ordering.restore_period().max(1);
        let cached_programs = ordering.programs(period);

        let mut sweep_stats: Vec<SweepStats> = Vec::new();
        let mut off_history: Vec<f64> = Vec::new();
        if self.options.track_off {
            off_history
                .push(treesvd_sim::off_measure_limited(&store, self.options.threads.unwrap_or(0)));
        }
        let mut converged = false;
        // one scratch for the whole run: after the first step of the first
        // sweep the executor allocates nothing per step
        let mut scratch = ExecScratch::new();
        for k in 0..self.options.max_sweeps {
            let prog = &cached_programs[k % period];
            debug_assert_eq!(store.layout, prog.initial_layout, "layout cycle broken");
            let stats =
                execute_program_with_scratch(&machine, prog, &mut store, &config, &mut scratch);
            if self.options.track_off {
                off_history.push(treesvd_sim::off_measure_limited(
                    &store,
                    self.options.threads.unwrap_or(0),
                ));
            }
            let done = stats.is_converged();
            sweep_stats.push(stats);
            if done {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SvdError::NoConvergence {
                sweeps: sweep_stats.len(),
                last_coupling: sweep_stats.last().map_or(f64::NAN, |s| s.max_coupling),
            });
        }

        let simulated_time = sweep_stats.iter().map(|s| s.total_time()).sum();
        let svd = self.extract(a, &store, m, n, n_pad)?;
        Ok(SvdRun {
            svd,
            sweeps: sweep_stats.len(),
            converged,
            sweep_stats,
            simulated_time,
            transposed,
            padded_n: n_pad,
            off_history,
            health: None,
            qr_frontend: false,
        })
    }

    /// Compute the SVD by the *distributed* executor: one thread per
    /// processor exchanging columns through `treesvd-comm` (the CMMD-style
    /// message-passing path), instead of the synchronous simulated machine.
    ///
    /// Numerically identical to [`HestenesSvd::compute`] (the executors are
    /// bitwise-equivalent); no simulated timing is produced, so
    /// `simulated_time` is 0 and `sweep_stats` is empty.
    ///
    /// With [`SvdOptions::chaos`] and/or [`SvdOptions::fault_policy`] set,
    /// the executor runs under seeded fault injection with the recovery
    /// layer armed (retry + redelivery, checkpoint restarts, degradation
    /// ladder); every absorbed fault leaves the result bitwise unchanged,
    /// and what recovery did is reported in [`SvdRun::health`].
    ///
    /// # Errors
    /// As [`HestenesSvd::compute`], plus [`SvdError::Unrecoverable`] when
    /// the executor fails past its recovery budget — carrying the failing
    /// rank, sweep, step, and message context.
    pub fn compute_distributed(&self, a: &Matrix) -> Result<SvdRun, SvdError> {
        self.compute_distributed_inner(a, true)
    }

    fn compute_distributed_inner(
        &self,
        a: &Matrix,
        allow_frontend: bool,
    ) -> Result<SvdRun, SvdError> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(SvdError::EmptyMatrix);
        }
        if a.rows() < a.cols() {
            let at = a.transpose();
            let mut run = self.compute_distributed_inner(&at, allow_frontend)?;
            std::mem::swap(&mut run.svd.u, &mut run.svd.v);
            run.transposed = true;
            return Ok(run);
        }
        let (m, n) = a.shape();
        if allow_frontend && crate::tall::engages(&self.options, m, n) {
            return self.frontend_run(a, false, true);
        }
        let n_pad = self.padded_size(n)?;
        let ordering = self.checked_ordering(n_pad)?;
        let mut columns = a.clone().into_columns();
        columns.resize(n_pad, vec![0.0; m]);
        let threshold = self.options.threshold.unwrap_or(n_pad as f64 * f64::EPSILON);
        let config = treesvd_sim::ExecConfig {
            threshold,
            sort: self.options.sort,
            cached_norms: false, // the distributed path keeps the reference kernel
            serial_cutoff: self.options.serial_cutoff,
            threads: self.options.threads.unwrap_or(0),
        };
        // Overlap: honor an explicit pin; otherwise ask the calibrated
        // cost model (which turns it off where the zero-copy transport
        // leaves nothing to hide — the recorded small-P regression). The
        // executor still engages overlap only behind the analyzer's
        // deadlock-freedom proof; results are bitwise-identical either way.
        let overlap = self.options.overlap.unwrap_or_else(|| {
            treesvd_tune::advise_overlap(m, n_pad, self.options.vectors, self.options.topology)
        });
        let dist_cfg = treesvd_sim::DistConfig {
            exec: config,
            max_sweeps: self.options.max_sweeps,
            transport: treesvd_sim::Transport::ZeroCopy,
            overlap,
            policy: self.options.effective_policy(),
            fault: self.options.chaos.clone(),
            cert_cache: self.options.certificate_cache.clone(),
        };
        let outcome = treesvd_sim::distributed_svd_with(
            ordering.as_ref(),
            columns,
            self.options.vectors,
            &dist_cfg,
        )?;
        if !outcome.converged {
            return Err(SvdError::NoConvergence {
                sweeps: outcome.sweeps,
                last_coupling: f64::NAN,
            });
        }
        let store = ColumnStore { slots: outcome.slots, layout: outcome.layout };
        let svd = self.extract(a, &store, m, n, n_pad)?;
        Ok(SvdRun {
            svd,
            sweeps: outcome.sweeps,
            converged: true,
            sweep_stats: Vec::new(),
            simulated_time: 0.0,
            transposed: false,
            padded_n: n_pad,
            off_history: Vec::new(),
            health: Some(outcome.health),
            qr_frontend: false,
        })
    }

    /// Extract `U`, `σ`, `V` from the converged store.
    fn extract(
        &self,
        a: &Matrix,
        store: &ColumnStore,
        m: usize,
        n: usize,
        n_pad: usize,
    ) -> Result<Svd, SvdError> {
        let mut cols = store.columns_in_index_order();
        debug_assert_eq!(cols.len(), n_pad);

        // singular values = column norms of the converged H = A·V
        let mut norms: Vec<f64> = cols.iter().map(|c| treesvd_matrix::ops::norm2(&c.a)).collect();

        // The larger-norm-to-smaller-label rule orders columns by the norms
        // the sweep tracked; re-measuring the converged columns can land a
        // (near-)duplicate pair the other way round in the last few ulps.
        // Repair only those measurement-level ties — a larger inversion is
        // a real ordering bug and must stay visible to the sorted-σ tests.
        if self.options.sort == SortMode::Descending {
            let tied = |lo: f64, hi: f64| hi - lo <= 4.0 * f64::EPSILON * hi;
            let mut swapped = true;
            while swapped {
                swapped = false;
                for j in 1..norms.len() {
                    if norms[j - 1] < norms[j] && tied(norms[j - 1], norms[j]) {
                        norms.swap(j - 1, j);
                        cols.swap(j - 1, j);
                        swapped = true;
                    }
                }
            }
        }
        let max_norm = norms.iter().fold(0.0_f64, |acc, &v| acc.max(v));
        let rank_tol = max_norm * n_pad as f64 * f64::EPSILON;

        // keep the first n (for descending sort the padding zeros are at
        // the tail; without sorting the padded columns never swap, so they
        // also sit at labels >= n)
        let mut u = Matrix::zeros(m, n).map_err(|_| SvdError::EmptyMatrix)?;
        let mut sigma = vec![0.0; n];
        let mut zero_u = Vec::new();
        for j in 0..n {
            sigma[j] = norms[j];
            if norms[j] > rank_tol {
                let mut col = cols[j].a.clone();
                treesvd_matrix::ops::scal(1.0 / norms[j], &mut col);
                u.set_col(j, &col);
            } else {
                sigma[j] = 0.0;
                zero_u.push(j);
            }
        }
        let rank = n - zero_u.len();
        complete_orthonormal(&mut u, &zero_u);

        let v = if self.options.vectors {
            let mut v = Matrix::zeros(n, n).map_err(|_| SvdError::EmptyMatrix)?;
            let mut zero_v = Vec::new();
            for j in 0..n {
                let vj = &cols[j].v;
                // rotations only ever mix V columns within the original
                // coordinates (padded columns never rotate), so a column
                // belonging to a nonzero singular value is supported on
                // the first n coordinates; a padded column that was
                // swapped into the leading block is a unit vector in a
                // padded coordinate and gets re-completed below.
                let head_norm = treesvd_matrix::ops::norm2(&vj[..n]);
                if sigma[j] > 0.0 || head_norm > 0.5 {
                    let head: Vec<f64> = vj[..n].to_vec();
                    v.set_col(j, &head);
                } else {
                    zero_v.push(j);
                }
            }
            complete_orthonormal(&mut v, &zero_v);
            v
        } else {
            Matrix::identity(n, n).map_err(|_| SvdError::EmptyMatrix)?
        };

        let _ = a;
        Ok(Svd { u, sigma, v, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SvdOptions;
    use treesvd_matrix::{checks, generate};
    use treesvd_orderings::OrderingKind;
    use treesvd_sim::SortMode;

    fn assert_good_svd(a: &Matrix, run: &SvdRun, tol: f64) {
        assert!(run.converged);
        let svd = &run.svd;
        assert!(svd.residual(a) < tol, "residual {}", svd.residual(a));
        assert!(svd.orthogonality() < tol, "orthogonality {}", svd.orthogonality());
        assert!(checks::is_nonincreasing(&svd.sigma), "sigma not sorted: {:?}", svd.sigma);
    }

    #[test]
    fn default_solver_on_random_matrix() {
        let a = generate::random_uniform(20, 16, 1);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert_good_svd(&a, &run, 1e-11);
    }

    #[test]
    fn known_spectrum_recovered() {
        let sigma = [9.0, 4.0, 2.0, 1.0, 0.25];
        let a = generate::with_singular_values(12, &sigma, 2);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-10);
    }

    #[test]
    fn verified_schedule_accepts_builtin_and_rejects_corrupt() {
        use treesvd_orderings::{PairStep, Permutation, Program};

        let a = generate::random_uniform(12, 8, 5);
        // all built-in orderings pass the pre-flight verifier
        let run =
            HestenesSvd::new(SvdOptions::default().with_verify_schedule(true)).compute(&a).unwrap();
        assert_good_svd(&a, &run, 1e-11);

        // a custom ordering that stalls on its first pairing is rejected
        // before any matrix data is touched
        struct Stalled(usize);
        impl JacobiOrdering for Stalled {
            fn n(&self) -> usize {
                self.0
            }
            fn name(&self) -> String {
                "stalled".into()
            }
            fn restore_period(&self) -> usize {
                1
            }
            fn sweep_program(&self, _sweep: usize, layout: &[usize]) -> Program {
                Program {
                    n: self.0,
                    initial_layout: layout.to_vec(),
                    steps: vec![PairStep { move_after: Permutation::identity(self.0) }; self.0 - 1],
                }
            }
        }
        let options = SvdOptions {
            ordering: OrderingChoice::Custom(Box::new(|n| {
                Ok(Box::new(Stalled(n)) as Box<dyn JacobiOrdering>)
            })),
            ..SvdOptions::default()
        }
        .with_verify_schedule(true);
        match HestenesSvd::new(options).compute(&a) {
            Err(SvdError::Schedule(v)) => {
                assert!(v.to_string().contains("step"), "diagnostic not step-precise: {v}");
            }
            other => panic!("expected SvdError::Schedule, got {other:?}"),
        }
    }

    #[test]
    fn every_ordering_computes_the_same_svd() {
        let sigma = [8.0, 5.0, 3.0, 2.0, 1.5, 1.0, 0.5, 0.25];
        let a = generate::with_singular_values(16, &sigma, 3);
        for kind in OrderingKind::ALL {
            let run = HestenesSvd::with_ordering(kind).compute(&a).unwrap();
            assert_good_svd(&a, &run, 1e-10);
            assert!(
                checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-9,
                "{kind}: {:?}",
                run.svd.sigma
            );
        }
    }

    #[test]
    fn wide_matrix_transposed_internally() {
        let at = generate::with_singular_values(10, &[4.0, 2.0, 1.0], 4);
        let a = at.transpose(); // 3 x 10
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(run.transposed);
        // for a wide matrix the thin factors swap roles: U is 3x10? No —
        // we return A = U Σ Vᵀ with U: 3×3? Our convention: factors of Aᵀ
        // swapped, so u is m×k with k = min-dim... check reconstruction
        // through the returned shapes instead:
        let svd = &run.svd;
        assert_eq!(svd.sigma.len(), 3);
        // Aᵀ = (V) Σ (U)ᵀ reconstructs, hence A = U Σ Vᵀ with the swap
        let recon = checks::reconstruction_residual(&a.transpose(), &svd.v, &svd.sigma, &svd.u);
        assert!(recon < 1e-11, "residual {recon}");
    }

    #[test]
    fn odd_and_non_power_sizes_padded() {
        // 7 columns with the fat-tree ordering: pads to 8
        let a = generate::random_uniform(9, 7, 5);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert_eq!(run.padded_n, 8);
        assert_good_svd(&a, &run, 1e-11);
        assert_eq!(run.svd.sigma.len(), 7);

        // 10 columns with a ring ordering: even already, no padding needed
        let a = generate::random_uniform(12, 10, 6);
        let run = HestenesSvd::with_ordering(OrderingKind::NewRing).compute(&a).unwrap();
        assert_eq!(run.padded_n, 10);
        assert_good_svd(&a, &run, 1e-11);
    }

    #[test]
    fn rank_deficient_matrix() {
        let a = generate::rank_deficient(10, 6, 3, 7);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert_eq!(run.svd.rank, 3);
        assert_good_svd(&a, &run, 1e-10);
        for &s in &run.svd.sigma[3..] {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn already_orthogonal_converges_in_low_sweeps() {
        let a = generate::already_orthogonal(12, 8, 8);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        // norms are 1..8 ascending by label: sorting must reverse them,
        // which costs extra sweeps but must still converge quickly
        assert!(run.sweeps <= 6, "sweeps {}", run.sweeps);
        assert!(checks::is_nonincreasing(&run.svd.sigma));
    }

    #[test]
    fn no_vectors_mode_skips_v() {
        let a = generate::random_uniform(10, 8, 9);
        let run = HestenesSvd::new(SvdOptions::default().with_vectors(false)).compute(&a).unwrap();
        assert!(run.converged);
        // sigma still correct vs a full run
        let full = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &full.svd.sigma) < 1e-10);
    }

    #[test]
    fn ill_conditioned_graded_matrix() {
        let a = generate::graded(24, 16, 1e-8, 10);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(run.converged);
        assert!(run.svd.residual(&a) < 1e-10);
        // the small singular values are still resolved relatively well —
        // one-sided Jacobi's high relative accuracy
        let expect: Vec<f64> = (0..16).map(|k| 1e-8_f64.powf(k as f64 / 15.0)).collect();
        let mut sorted = expect.clone();
        sorted.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (c, e) in run.svd.sigma.iter().zip(sorted.iter()) {
            assert!((c - e).abs() <= 1e-6 * e.max(1e-12), "{c} vs {e}");
        }
    }

    #[test]
    fn hilbert_matrix() {
        let a = generate::hilbert(10, 8);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert_good_svd(&a, &run, 1e-10);
    }

    #[test]
    fn unsorted_mode_still_correct() {
        let a = generate::random_uniform(12, 8, 11);
        let run =
            HestenesSvd::new(SvdOptions::default().with_sort(SortMode::None)).compute(&a).unwrap();
        assert!(run.converged);
        assert!(run.svd.residual(&a) < 1e-11);
        // not necessarily sorted in this mode — but the multiset matches
        let sorted_run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        let mut ours = run.svd.sigma.clone();
        ours.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!(checks::spectrum_distance(&ours, &sorted_run.svd.sigma) < 1e-10);
    }

    #[test]
    fn zero_matrix_all_zero_sigma() {
        let a = Matrix::zeros(6, 4).unwrap();
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert_eq!(run.svd.rank, 0);
        assert!(run.svd.sigma.iter().all(|&s| s == 0.0));
        assert!(run.svd.orthogonality() < 1e-12);
    }

    #[test]
    fn simulated_time_positive_and_history_recorded() {
        let a = generate::random_uniform(16, 8, 12);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(run.simulated_time > 0.0);
        let hist = run.coupling_history();
        assert_eq!(hist.len(), run.sweeps);
        assert!(run.total_rotations() > 0);
        // couplings decay (ultimately quadratically)
        assert!(hist.last().unwrap() < &1e-7);
    }
}

#[cfg(test)]
mod distributed_tests {
    use super::*;
    use crate::options::SvdOptions;
    use treesvd_matrix::{checks, generate};
    use treesvd_orderings::OrderingKind;

    #[test]
    fn distributed_driver_matches_simulated_driver() {
        let a = generate::random_uniform(20, 12, 31);
        let solver = HestenesSvd::new(SvdOptions::default());
        let sim = solver.compute(&a).unwrap();
        let dist = solver.compute_distributed(&a).unwrap();
        assert_eq!(sim.sweeps, dist.sweeps);
        assert_eq!(sim.svd.sigma, dist.svd.sigma, "bitwise-identical spectra expected");
        assert!(dist.svd.residual(&a) < 1e-11);
        assert!(dist.svd.orthogonality() < 1e-11);
    }

    #[test]
    fn distributed_driver_all_orderings() {
        let a = generate::random_uniform(16, 8, 32);
        for kind in OrderingKind::ALL {
            let run = HestenesSvd::with_ordering(kind).compute_distributed(&a).unwrap();
            assert!(run.converged, "{kind}");
            assert!(run.svd.residual(&a) < 1e-10, "{kind}");
            assert!(checks::is_nonincreasing(&run.svd.sigma), "{kind}");
        }
    }

    #[test]
    fn overlap_option_is_bitwise_invisible() {
        let a = generate::random_uniform(18, 8, 34);
        let on = HestenesSvd::new(SvdOptions::default().with_overlap(true))
            .compute_distributed(&a)
            .unwrap();
        let off = HestenesSvd::new(SvdOptions::default().with_overlap(false))
            .compute_distributed(&a)
            .unwrap();
        assert_eq!(on.sweeps, off.sweeps);
        assert_eq!(on.svd.sigma, off.svd.sigma);
        assert_eq!(on.svd.u, off.svd.u);
        assert_eq!(on.svd.v, off.svd.v);
    }

    #[test]
    fn warm_certificate_run_skips_prover_and_is_bitwise_identical() {
        let a = generate::random_uniform(18, 8, 36);
        let cache = std::sync::Arc::new(treesvd_analyze::CertificateCache::new());
        let opts = || {
            SvdOptions::default()
                .with_verify_schedule(true)
                .with_certificate_cache(std::sync::Arc::clone(&cache))
        };
        // cold: the provers run and emit the certificate
        let cold = HestenesSvd::new(opts()).compute_distributed(&a).unwrap();
        assert_eq!(cache.hits(), 0, "first run must prove from scratch");
        let cold_misses = cache.misses();
        assert!(cold_misses > 0);
        // warm: served from the validated certificate, bitwise identical
        let warm = HestenesSvd::new(opts()).compute_distributed(&a).unwrap();
        assert!(cache.hits() > 0, "warm run must consume the certificate");
        assert_eq!(cache.misses(), cold_misses, "warm run must not re-prove");
        assert_eq!(cold.sweeps, warm.sweeps);
        assert_eq!(cold.svd.sigma, warm.svd.sigma);
        assert_eq!(cold.svd.u, warm.svd.u);
        assert_eq!(cold.svd.v, warm.svd.v);
        // a certificate-free run stays bitwise identical too
        let bare = HestenesSvd::new(SvdOptions::default()).compute_distributed(&a).unwrap();
        assert_eq!(bare.svd.sigma, warm.svd.sigma);
    }

    #[test]
    fn distributed_driver_wide_input() {
        let at = generate::with_singular_values(10, &[3.0, 2.0, 1.0, 0.5], 33);
        let a = at.transpose();
        let run = HestenesSvd::new(SvdOptions::default()).compute_distributed(&a).unwrap();
        assert!(run.transposed);
        let recon =
            checks::reconstruction_residual(&a.transpose(), &run.svd.v, &run.svd.sigma, &run.svd.u);
        assert!(recon < 1e-11);
    }

    #[test]
    fn chaos_run_is_bitwise_identical_and_reports_health() {
        let a = generate::random_uniform(16, 8, 35);
        let clean = HestenesSvd::new(SvdOptions::default()).compute_distributed(&a).unwrap();
        let health = clean.health.as_ref().expect("distributed runs report health");
        assert!(!health.degraded(), "clean run must need no recovery");
        let chaotic =
            HestenesSvd::new(SvdOptions::default().with_chaos(13)).compute_distributed(&a).unwrap();
        assert_eq!(clean.svd.sigma, chaotic.svd.sigma, "absorbed faults must be bitwise-invisible");
        assert_eq!(clean.svd.u, chaotic.svd.u);
        assert_eq!(clean.svd.v, chaotic.svd.v);
        let health = chaotic.health.expect("chaos run reports health");
        assert!(health.faults.injected() > 0, "the seeded plan must actually fire");
    }
}

#[cfg(test)]
mod off_tracking_tests {
    use super::*;
    use crate::options::SvdOptions;
    use treesvd_matrix::generate;

    #[test]
    fn off_history_decays_quadratically() {
        let a = generate::random_uniform(32, 16, 41);
        let run = HestenesSvd::new(SvdOptions::default().with_track_off(true)).compute(&a).unwrap();
        let h = &run.off_history;
        assert_eq!(h.len(), run.sweeps + 1);
        // strictly decreasing until roundoff
        for w in h.windows(2) {
            assert!(w[1] <= w[0] * 1.0000001, "off increased: {:?}", h);
        }
        // the tail contraction is at least quadratic-ish: once off is small
        // relative to ||A||^2, one more sweep crushes it
        let f2 = a.frobenius_norm().powi(2);
        if let Some(idx) = h.iter().position(|&x| x / f2 < 1e-3) {
            if idx + 1 < h.len() {
                assert!(
                    h[idx + 1] / f2 <= 1e-5,
                    "weak contraction: {:e} -> {:e}",
                    h[idx] / f2,
                    h[idx + 1] / f2
                );
            }
        }
    }

    #[test]
    fn off_history_empty_by_default() {
        let a = generate::random_uniform(10, 8, 42);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        assert!(run.off_history.is_empty());
    }

    #[test]
    fn cached_programs_change_nothing() {
        // sweeps and spectra agree with the sequential reference, which
        // regenerates nothing — guarding the period-based program cache
        let a = generate::random_uniform(24, 16, 43);
        for kind in [OrderingKind::NewRing, OrderingKind::Llb, OrderingKind::Hybrid] {
            let run = HestenesSvd::with_ordering(kind).compute(&a).unwrap();
            let seq = crate::sequential::sequential_svd(&a, 60).unwrap();
            assert!(
                treesvd_matrix::checks::spectrum_distance(&run.svd.sigma, &seq.svd.sigma) < 1e-9,
                "{kind}"
            );
        }
    }
}
