//! Configuration for the parallel Hestenes SVD.

use std::fmt;
use treesvd_net::{CostModel, TopologyKind};
use treesvd_orderings::{JacobiOrdering, OrderingError, OrderingKind};
use treesvd_sim::{DistError, FaultPlan, FaultPolicy, SortMode};

/// A caller-supplied ordering factory: given the padded column count,
/// produce the ordering.
pub type OrderingFactory =
    Box<dyn Fn(usize) -> Result<Box<dyn JacobiOrdering>, OrderingError> + Send + Sync>;

/// Which Jacobi ordering drives the sweeps.
pub enum OrderingChoice {
    /// One of the built-in orderings, instantiated for the (padded) size.
    Kind(OrderingKind),
    /// A caller-supplied ordering factory.
    Custom(OrderingFactory),
}

impl fmt::Debug for OrderingChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingChoice::Kind(k) => write!(f, "OrderingChoice::Kind({k})"),
            OrderingChoice::Custom(_) => write!(f, "OrderingChoice::Custom(..)"),
        }
    }
}

impl Clone for OrderingChoice {
    fn clone(&self) -> Self {
        match self {
            OrderingChoice::Kind(k) => OrderingChoice::Kind(*k),
            OrderingChoice::Custom(_) => {
                panic!("custom ordering choices cannot be cloned; use OrderingChoice::Kind")
            }
        }
    }
}

/// Which meeting kernel the blocked (Schreiber) driver uses when two
/// column blocks meet on a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockKernel {
    /// Orthogonalize the `2c`-column union one pair at a time with
    /// [`orthogonalize_pair`](treesvd_matrix::orthogonalize_pair),
    /// streaming full `m`-length columns O(c²) times. The reference
    /// (oracle) path.
    Pairwise,
    /// Block one-sided Jacobi: form the `2c×2c` Gram matrix
    /// `G = [X Y]ᵀ[X Y]`, run the cyclic sweep with sorted storage on `G`
    /// in-cache while accumulating the orthogonal update `W`, then apply
    /// `[X Y] ← [X Y]·W` as one blocked panel multiply — BLAS-3-shaped
    /// work that reads the panel O(1) times per meeting instead of O(c).
    #[default]
    Gram,
}

impl fmt::Display for BlockKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKernel::Pairwise => write!(f, "pairwise"),
            BlockKernel::Gram => write!(f, "gram"),
        }
    }
}

/// Outer (cache-level) blocking of the blocked driver's Gram meetings.
///
/// A meeting's union panel is `m × 2c` doubles; once it outgrows the L2
/// cache the Gram sweep re-reads every column from DRAM and the kernel's
/// advantage collapses (the `c = 32` falloff in `BENCH_blocked.json`).
/// Hierarchical blocking splits such a union into cache-sized sub-blocks
/// and cycles the in-cache Gram kernel over all sub-block pairs —
/// Novaković's multi-level scheme (arXiv 1401.2720) grafted onto the
/// paper's tree ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HierBlocking {
    /// Engage automatically when a union panel outgrows a quarter of the
    /// probed L2 size ([`treesvd_matrix::cache::l2_bytes`], overridable
    /// via `TREESVD_L2`).
    #[default]
    Auto,
    /// Never split meetings (the pre-hierarchical behavior).
    Off,
    /// Engage when the union column count exceeds this width; sub-blocks
    /// are half this wide.
    Cols(usize),
}

impl fmt::Display for HierBlocking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierBlocking::Auto => write!(f, "auto"),
            HierBlocking::Off => write!(f, "off"),
            HierBlocking::Cols(c) => write!(f, "{c}"),
        }
    }
}

/// Options for [`HestenesSvd`](crate::HestenesSvd).
#[derive(Debug)]
pub struct SvdOptions {
    /// The parallel Jacobi ordering (default: the paper's fat-tree
    /// ordering).
    pub ordering: OrderingChoice,
    /// The simulated machine's topology (default: perfect binary fat-tree).
    pub topology: TopologyKind,
    /// Cost-model parameters for the simulated timing.
    pub cost: CostModel,
    /// Pair threshold, relative to the column norms; `None` derives
    /// `n · ε` from the (padded) size, the classical choice.
    pub threshold: Option<f64>,
    /// Hard cap on sweeps (the iteration normally terminates much earlier;
    /// convergence is ultimately quadratic, §1).
    pub max_sweeps: usize,
    /// Sorting behaviour (default: descending singular values, §3.2.1).
    pub sort: SortMode,
    /// Whether to accumulate `V` and produce singular vectors. Turning
    /// this off roughly halves memory traffic when only `Σ` is needed.
    pub vectors: bool,
    /// Record the exact off-diagonal measure before the first sweep and
    /// after every sweep (O(n²m) per sweep — instrumentation only).
    pub track_off: bool,
    /// Use the cached-column-norms fast path (the classical Hestenes
    /// optimization; ~30% fewer flops per rotation, last-ulp differences
    /// from the reference path possible).
    pub cached_norms: bool,
    /// Adaptive dispatch cutoff forwarded to the executor
    /// ([`treesvd_sim::ExecConfig::serial_cutoff`]): per-step work (in
    /// data words) below which rotations run serially instead of forking
    /// host threads.
    pub serial_cutoff: usize,
    /// Statically verify the ordering's schedule (ownership safety, pair
    /// coverage, order restoration, deadlock freedom) with
    /// `treesvd-analyze` before touching matrix data, rejecting the run
    /// with [`SvdError::Schedule`] on a violation. Cheap (combinatorial in
    /// `n`, independent of `m`); mainly valuable with
    /// [`OrderingChoice::Custom`].
    pub verify_schedule: bool,
    /// Meeting kernel for the blocked (Schreiber) driver
    /// ([`blocked_svd`](crate::blocked_svd)); ignored by the unblocked
    /// driver. Default: [`BlockKernel::Gram`].
    pub block_kernel: BlockKernel,
    /// Communication/computation overlap in the distributed executor
    /// ([`HestenesSvd::compute_distributed`](crate::HestenesSvd::compute_distributed)):
    /// ship a rotated data column as soon as its A-phase completes and
    /// defer each arrival to its point of use one step later. Only takes
    /// effect after `treesvd-analyze` proves the overlapped plan
    /// deadlock-free for the ordering; bitwise-identical results either
    /// way. Default: `None` — the driver consults the calibrated cost
    /// model ([`treesvd_tune::advise_overlap`]), which turns overlap
    /// *off* where the zero-copy transport leaves it nothing to hide
    /// (the recorded small-P regression in `BENCH_distributed.json`).
    /// `Some(_)` pins the choice.
    pub overlap: Option<bool>,
    /// Host-thread budget: caps the fork lanes used by the executor, the
    /// blocked driver, and `off_measure`. `None` uses
    /// [`par::num_threads`](treesvd_sim::par::num_threads) (which honors
    /// the `TREESVD_THREADS` environment variable).
    pub threads: Option<usize>,
    /// Recovery policy for the distributed executor: receive windows,
    /// retries with backoff, sweep-boundary checkpoints, whole-world
    /// restarts, and the degradation ladder. `None` uses
    /// [`FaultPolicy::default`] (pre-recovery behavior: a 5 s window and
    /// fail-fast on the first timeout), unless [`SvdOptions::chaos`] is
    /// armed, in which case [`FaultPolicy::chaos`] is the baseline.
    pub fault_policy: Option<FaultPolicy>,
    /// Seeded deterministic fault plan for the distributed executor
    /// (chaos testing). Replayable: the same seed injects the identical
    /// fault sequence. Ignored by the simulated/sequential paths.
    pub chaos: Option<FaultPlan>,
    /// Proof-certificate cache shared with the schedule verifier and the
    /// distributed executor's overlap/recovery gate. When set, a repeat
    /// run over the same `(ordering, n)` consumes the cached
    /// [`ProofCertificate`](treesvd_analyze::ProofCertificate) — witness
    /// validation in O(plan) instead of re-running the provers — with
    /// identical results either way. A matching certificate that fails
    /// validation is a hard error; a version-skewed one silently
    /// re-proves and refreshes the cache. `None` re-proves every run.
    pub certificate_cache: Option<std::sync::Arc<treesvd_analyze::CertificateCache>>,
    /// Tall-skinny QR front-end: when the aspect ratio `m/n` reaches
    /// [`SvdOptions::qr_crossover`], factor `A = QR` with the TSQR tree
    /// ([`treesvd_matrix::qr`]), run the Jacobi driver on the `n×n`
    /// factor `R`, and back-transform `U ← Q·U_R` without ever forming
    /// `Q`. Wide inputs (`m < n`) go through the same path on `Aᵀ`.
    /// Default `false` (bitwise-identical to the pre-front-end drivers).
    pub qr_frontend: bool,
    /// Aspect-ratio crossover for the front-end: engage when
    /// `m ≥ qr_crossover · n`. The QR stage costs `≈ 2mn²` flops and the
    /// back-transform `≈ 2mn·k`, versus Jacobi sweeps that stream
    /// `O(mn·log n)` words per sweep — the break-even sits near 4–8 on
    /// bandwidth-bound machines, so the default is 8.
    pub qr_crossover: f64,
    /// Panel width (compact-WY block size) of the front-end's tiled QR.
    pub qr_panel: usize,
    /// Outer cache-level blocking of the blocked driver's meetings.
    pub hier: HierBlocking,
}

impl Default for SvdOptions {
    fn default() -> Self {
        Self {
            ordering: OrderingChoice::Kind(OrderingKind::FatTree),
            topology: TopologyKind::PerfectFatTree,
            cost: CostModel::default(),
            threshold: None,
            max_sweeps: 60,
            sort: SortMode::Descending,
            vectors: true,
            track_off: false,
            cached_norms: false,
            serial_cutoff: treesvd_sim::ExecConfig::DEFAULT_SERIAL_CUTOFF,
            verify_schedule: false,
            block_kernel: BlockKernel::default(),
            overlap: None,
            threads: None,
            fault_policy: None,
            chaos: None,
            certificate_cache: None,
            qr_frontend: false,
            qr_crossover: 8.0,
            qr_panel: 32,
            hier: HierBlocking::default(),
        }
    }
}

impl SvdOptions {
    /// Use the given built-in ordering.
    pub fn with_ordering(mut self, kind: OrderingKind) -> Self {
        self.ordering = OrderingChoice::Kind(kind);
        self
    }

    /// Use the given topology.
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Set the sweep cap.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Set the sort mode.
    pub fn with_sort(mut self, sort: SortMode) -> Self {
        self.sort = sort;
        self
    }

    /// Enable or disable singular-vector accumulation.
    pub fn with_vectors(mut self, vectors: bool) -> Self {
        self.vectors = vectors;
        self
    }

    /// Enable exact off-diagonal tracking (instrumentation).
    pub fn with_track_off(mut self, track_off: bool) -> Self {
        self.track_off = track_off;
        self
    }

    /// Enable the cached-norms fast path.
    pub fn with_cached_norms(mut self, cached: bool) -> Self {
        self.cached_norms = cached;
        self
    }

    /// Set the executor's serial-dispatch cutoff (`0` always forks,
    /// `usize::MAX` always runs serially).
    pub fn with_serial_cutoff(mut self, serial_cutoff: usize) -> Self {
        self.serial_cutoff = serial_cutoff;
        self
    }

    /// Require the schedule to pass static verification before execution.
    pub fn with_verify_schedule(mut self, verify: bool) -> Self {
        self.verify_schedule = verify;
        self
    }

    /// Select the blocked driver's meeting kernel.
    pub fn with_block_kernel(mut self, kernel: BlockKernel) -> Self {
        self.block_kernel = kernel;
        self
    }

    /// Pin comm/compute overlap in the distributed executor on or off
    /// (the default, unpinned, lets the calibrated cost model decide per
    /// problem).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Cap the host-thread budget (`None` = machine parallelism /
    /// `TREESVD_THREADS`).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Set the distributed executor's recovery policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Set the initial receive window of the distributed executor's
    /// blocking receives (layered onto the effective policy).
    pub fn with_recv_timeout(mut self, timeout: std::time::Duration) -> Self {
        let mut policy = self.effective_policy();
        policy.recv_timeout = timeout;
        self.fault_policy = Some(policy);
        self
    }

    /// Set the receive retry budget (attempts beyond the first, each with
    /// exponential backoff and a redelivery request).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        let mut policy = self.effective_policy();
        policy.max_retries = max_retries;
        self.fault_policy = Some(policy);
        self
    }

    /// Share a proof-certificate cache across runs: the schedule
    /// verifier and the distributed executor's overlap/recovery gate
    /// consume validated certificates instead of re-proving (see
    /// [`SvdOptions::certificate_cache`]).
    pub fn with_certificate_cache(
        mut self,
        cache: std::sync::Arc<treesvd_analyze::CertificateCache>,
    ) -> Self {
        self.certificate_cache = Some(cache);
        self
    }

    /// Arm the canonical seeded chaos plan ([`FaultPlan::chaos`]) and, if
    /// no explicit policy was chosen, the matching recovery profile
    /// ([`FaultPolicy::chaos`]).
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.chaos = Some(FaultPlan::chaos(seed));
        self
    }

    /// Enable (or disable) the tall-skinny QR front-end.
    pub fn with_qr_frontend(mut self, enabled: bool) -> Self {
        self.qr_frontend = enabled;
        self
    }

    /// Set the front-end's aspect-ratio crossover (engage when
    /// `m ≥ crossover · n`). Values ≤ 1 engage on every non-wide input.
    pub fn with_qr_crossover(mut self, crossover: f64) -> Self {
        self.qr_crossover = crossover;
        self
    }

    /// Set the front-end's QR panel width.
    pub fn with_qr_panel(mut self, panel: usize) -> Self {
        self.qr_panel = panel.max(1);
        self
    }

    /// Select the blocked driver's outer cache-level blocking policy.
    pub fn with_hier_blocking(mut self, hier: HierBlocking) -> Self {
        self.hier = hier;
        self
    }

    /// The recovery policy a distributed run will actually use: the
    /// explicit one, else the chaos profile when a chaos plan is armed,
    /// else the fail-fast default.
    pub fn effective_policy(&self) -> FaultPolicy {
        match (&self.fault_policy, &self.chaos) {
            (Some(p), _) => *p,
            (None, Some(_)) => FaultPolicy::chaos(),
            (None, None) => FaultPolicy::default(),
        }
    }
}

/// Errors from the SVD driver.
#[derive(Debug)]
pub enum SvdError {
    /// The input matrix had a zero dimension.
    EmptyMatrix,
    /// The chosen ordering rejected the (padded) size.
    Ordering(OrderingError),
    /// Static schedule verification found a violation (only with
    /// [`SvdOptions::verify_schedule`]).
    Schedule(treesvd_analyze::Violation),
    /// The iteration hit `max_sweeps` without converging.
    NoConvergence {
        /// Sweeps performed.
        sweeps: usize,
        /// Last sweep's maximum normalized coupling.
        last_coupling: f64,
    },
    /// The distributed executor exhausted its recovery budget (retries,
    /// restarts, and — if permitted — the whole degradation ladder). The
    /// inner [`DistError`] pinpoints the final failure: rank, sweep,
    /// global step, and the offending message's source/tag.
    Unrecoverable(DistError),
}

impl fmt::Display for SvdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvdError::EmptyMatrix => write!(f, "matrix has a zero dimension"),
            SvdError::Ordering(e) => write!(f, "ordering rejected the problem size: {e}"),
            SvdError::Schedule(v) => write!(f, "schedule verification failed: {v}"),
            SvdError::NoConvergence { sweeps, last_coupling } => write!(
                f,
                "no convergence after {sweeps} sweeps (last max coupling {last_coupling:.3e})"
            ),
            SvdError::Unrecoverable(e) => write!(f, "distributed run unrecoverable: {e}"),
        }
    }
}

impl std::error::Error for SvdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvdError::Unrecoverable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for SvdError {
    fn from(e: DistError) -> Self {
        SvdError::Unrecoverable(e)
    }
}

impl From<OrderingError> for SvdError {
    fn from(e: OrderingError) -> Self {
        SvdError::Ordering(e)
    }
}

impl From<treesvd_analyze::Violation> for SvdError {
    fn from(v: treesvd_analyze::Violation) -> Self {
        SvdError::Schedule(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_the_papers() {
        let o = SvdOptions::default();
        assert!(matches!(o.ordering, OrderingChoice::Kind(OrderingKind::FatTree)));
        assert_eq!(o.topology, TopologyKind::PerfectFatTree);
        assert_eq!(o.sort, SortMode::Descending);
        assert!(o.vectors);
        assert_eq!(o.overlap, None, "overlap defaults to model-decided");
    }

    #[test]
    fn builder_methods_chain() {
        let o = SvdOptions::default()
            .with_ordering(OrderingKind::NewRing)
            .with_topology(TopologyKind::Cm5)
            .with_max_sweeps(10)
            .with_sort(SortMode::None)
            .with_vectors(false)
            .with_block_kernel(BlockKernel::Pairwise)
            .with_overlap(false)
            .with_threads(Some(2));
        assert!(matches!(o.ordering, OrderingChoice::Kind(OrderingKind::NewRing)));
        assert_eq!(o.topology, TopologyKind::Cm5);
        assert_eq!(o.max_sweeps, 10);
        assert_eq!(o.sort, SortMode::None);
        assert!(!o.vectors);
        assert_eq!(o.block_kernel, BlockKernel::Pairwise);
        assert_eq!(o.overlap, Some(false), "with_overlap pins the choice");
        assert_eq!(o.threads, Some(2));
    }

    #[test]
    fn block_kernel_default_and_display() {
        assert_eq!(SvdOptions::default().block_kernel, BlockKernel::Gram);
        assert_eq!(BlockKernel::Gram.to_string(), "gram");
        assert_eq!(BlockKernel::Pairwise.to_string(), "pairwise");
    }

    #[test]
    fn qr_frontend_defaults_and_builders() {
        let o = SvdOptions::default();
        assert!(!o.qr_frontend, "front-end must be opt-in");
        assert_eq!(o.qr_crossover, 8.0);
        assert_eq!(o.qr_panel, 32);
        assert_eq!(o.hier, HierBlocking::Auto);
        let o = o
            .with_qr_frontend(true)
            .with_qr_crossover(2.5)
            .with_qr_panel(0)
            .with_hier_blocking(HierBlocking::Cols(48));
        assert!(o.qr_frontend);
        assert_eq!(o.qr_crossover, 2.5);
        assert_eq!(o.qr_panel, 1, "panel width is floored at 1");
        assert_eq!(o.hier, HierBlocking::Cols(48));
    }

    #[test]
    fn hier_blocking_displays() {
        assert_eq!(HierBlocking::Auto.to_string(), "auto");
        assert_eq!(HierBlocking::Off.to_string(), "off");
        assert_eq!(HierBlocking::Cols(64).to_string(), "64");
    }

    #[test]
    fn error_display() {
        let e = SvdError::NoConvergence { sweeps: 60, last_coupling: 1e-3 };
        assert!(e.to_string().contains("60"));
        assert!(SvdError::EmptyMatrix.to_string().contains("zero"));
        let e: SvdError = OrderingError::OddSize(7).into();
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn fault_builders_layer_onto_the_effective_policy() {
        use std::time::Duration;
        // no knobs: fail-fast default
        assert_eq!(SvdOptions::default().effective_policy(), FaultPolicy::default());
        // chaos alone: the chaos profile
        let o = SvdOptions::default().with_chaos(11);
        assert_eq!(o.effective_policy(), FaultPolicy::chaos());
        assert_eq!(o.chaos.as_ref().unwrap().seed, 11);
        // per-knob builders refine the baseline in effect
        let o = SvdOptions::default()
            .with_chaos(11)
            .with_recv_timeout(Duration::from_millis(7))
            .with_max_retries(9);
        let p = o.effective_policy();
        assert_eq!(p.recv_timeout, Duration::from_millis(7));
        assert_eq!(p.max_retries, 9);
        assert!(p.degrade, "chaos baseline survives the refinement");
        // an explicit policy wins outright
        let o = SvdOptions::default().with_fault_policy(FaultPolicy::default()).with_chaos(5);
        assert_eq!(o.effective_policy(), FaultPolicy::default());
    }

    #[test]
    fn unrecoverable_error_keeps_the_distributed_context() {
        let inner = DistError::Crashed { rank: 3, sweep: 2 };
        let e: SvdError = inner.into();
        let msg = e.to_string();
        assert!(msg.contains("rank 3") && msg.contains("sweep 2"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    #[should_panic(expected = "cannot be cloned")]
    fn custom_choice_clone_panics() {
        let c = OrderingChoice::Custom(Box::new(|n| {
            Ok(Box::new(treesvd_orderings::RoundRobinOrdering::new(n)?) as Box<dyn JacobiOrdering>)
        }));
        let _ = c.clone();
    }
}
