//! One-sided (Hestenes) Jacobi SVD on tree architectures — the public API
//! of the Zhou & Brent (ICPP 1993) reproduction.
//!
//! # Quick start
//!
//! ```
//! use treesvd_core::{HestenesSvd, SvdOptions};
//! use treesvd_matrix::generate;
//!
//! // a 32 × 16 matrix with singular values 16, 15, …, 1
//! let sigma: Vec<f64> = (1..=16).rev().map(|k| k as f64).collect();
//! let a = generate::with_singular_values(32, &sigma, 42);
//!
//! let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
//! assert!(run.converged);
//! let svd = &run.svd;
//! // singular values emerge sorted (paper §3.2.1) and accurate
//! for (computed, expected) in svd.sigma.iter().zip(sigma.iter()) {
//!     assert!((computed - expected).abs() < 1e-8);
//! }
//! // and the factorization reconstructs A
//! assert!(treesvd_matrix::checks::reconstruction_residual(&a, &svd.u, &svd.sigma, &svd.v) < 1e-10);
//! ```
//!
//! # What runs underneath
//!
//! [`HestenesSvd::compute`] distributes the columns over a simulated
//! tree-connected multiprocessor (`treesvd-sim`), picks one of the paper's
//! parallel Jacobi orderings (`treesvd-orderings`), and sweeps until a full
//! sweep applies no rotation and no interchange (§1's termination rule with
//! the threshold strategy). Per-sweep rotations execute in parallel on real
//! host cores via a persistent worker pool; the machine model meanwhile accounts simulated
//! communication time on the configured topology, so the same run yields
//! both the numerical result and the performance data the experiments
//! report.
//!
//! [`sequential::sequential_svd`] is the plain cyclic-by-rows reference
//! used to cross-check every ordering.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod auto;
pub mod blocked;
pub mod driver;
pub mod options;
mod proptests;
pub mod result;
pub mod sequential;
pub mod tall;

pub use auto::{auto_svd, auto_svd_for, options_from_plan, AutoRun};
pub use blocked::{blocked_svd, BlockedOptions, BlockedRun};
pub use driver::{HestenesSvd, SvdRun};
pub use options::{BlockKernel, HierBlocking, OrderingChoice, SvdError, SvdOptions};
pub use result::{complete_orthonormal, Svd};

// convenient re-exports for downstream users
pub use treesvd_matrix::Matrix;
pub use treesvd_net::{CostModel, TopologyKind};
pub use treesvd_orderings::OrderingKind;
pub use treesvd_sim::SortMode;
pub use treesvd_sim::{
    DistError, FaultPlan, FaultPolicy, FaultSnapshot, HealthReport, StallEvent, StallKind,
};
pub use treesvd_tune::{DriverSel, KernelSel, TransportSel, TunePlan, TuneProblem};
