//! The tall-skinny QR front-end (ROADMAP item 3).
//!
//! The paper's one-sided Jacobi sweeps rotate full `m`-length columns at
//! every meeting: for `m ≫ n` nearly all memory bandwidth moves data a
//! one-sided preprocessing stage could shrink first. The front-end
//! factors `A = QR` with the TSQR tree of [`treesvd_matrix::qr`]
//! (Faverge–Langou–Robert–Dongarra, arXiv 1611.06892), runs the chosen
//! Jacobi driver on the small `n×n` factor `R`, and back-transforms
//!
//! ```text
//! R = U_R Σ Vᵀ   ⇒   A = QR = (Q·U_R) Σ Vᵀ,   so  U = Q·U_R
//! ```
//!
//! with a tiled apply-Q — `Q` is never formed. The crossover model: the
//! QR stage costs `≈ 2mn²` flops plus one streaming pass over `A` per
//! panel, while each Jacobi sweep streams `O(mn·log n)` words through
//! `O(n)` meetings; once `m/n` reaches
//! [`SvdOptions::qr_crossover`](crate::SvdOptions::qr_crossover) the
//! factorization pays for itself within the first sweep and every
//! subsequent sweep runs on an `n×n` working set. Correctness is aspect-
//! independent — `Q` has orthonormal columns, so `Σ` and `V` of `R` are
//! exactly those of `A`, and `U = Q·U_R` stays orthonormal even for
//! rank-deficient `R` (the inner driver completes `U_R` to a full
//! orthogonal basis).
//!
//! Wide inputs (`m < n`) reach this stage through the drivers' existing
//! transpose normalization: the front-end then runs on `Aᵀ` and the
//! caller swaps `U`/`V` back, so extreme aspect ratios are handled on
//! *both* sides.

use crate::options::{SvdError, SvdOptions};
use treesvd_matrix::qr::{Joiner, QrOptions, TsqrQr};
use treesvd_matrix::Matrix;
use treesvd_sim::par;

/// The [`Joiner`] that plugs the matrix crate's TSQR fork points into the
/// persistent worker pool ([`par::join_dyn`]).
pub(crate) struct PoolJoin;

impl Joiner for PoolJoin {
    fn fork(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send)) {
        par::join_dyn(a, b);
    }
}

/// Whether the front-end engages for an `m × n` input (callers have
/// already normalized to `m ≥ n`): opted in, strictly tall, and past the
/// aspect-ratio crossover. The crossover is floored at 1 so a
/// pathological option value cannot make the square `R` stage re-enter.
pub(crate) fn engages(opts: &SvdOptions, m: usize, n: usize) -> bool {
    opts.qr_frontend && m > n && m as f64 >= opts.qr_crossover.max(1.0) * n as f64
}

/// The fork-lane budget for the QR stage: the explicit option, else the
/// machine parallelism (`TREESVD_THREADS` honored).
pub(crate) fn lanes(opts: &SvdOptions) -> usize {
    opts.threads.unwrap_or_else(par::num_threads).max(1)
}

/// Factor `a = QR` with the TSQR tree, parallelized over the worker pool.
pub(crate) fn factor(a: &Matrix, opts: &SvdOptions) -> Result<TsqrQr, SvdError> {
    let qr_opts = QrOptions { panel: opts.qr_panel.max(1), leaf_rows: 0, lanes: lanes(opts) };
    // the engage guard guarantees m > n, so the factorization cannot fail
    TsqrQr::factor(a, &qr_opts, &PoolJoin).map_err(|_| SvdError::EmptyMatrix)
}

/// Back-transform `U ← Q·[U_R; 0]` (an `m×n` product applied tile by
/// tile, never forming `Q`). `u_r` is the inner driver's `n×n` left
/// factor.
pub(crate) fn back_transform(qr: &TsqrQr, u_r: &Matrix, lanes: usize) -> Matrix {
    let (m, n) = (qr.rows(), qr.cols());
    debug_assert_eq!(u_r.shape(), (n, n));
    let mut u = Matrix::zeros(m, n).expect("frontend shapes are nonzero");
    for j in 0..n {
        u.col_mut(j)[..n].copy_from_slice(u_r.col(j));
    }
    qr.apply_q(&mut u, lanes, &PoolJoin);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{blocked_svd, BlockedOptions, HestenesSvd, HierBlocking, SvdOptions};
    use treesvd_matrix::{checks, generate};

    fn fe_opts() -> SvdOptions {
        SvdOptions::default().with_qr_frontend(true)
    }

    fn assert_matches_direct(a: &Matrix, tol: f64) {
        let direct = HestenesSvd::new(SvdOptions::default()).compute(a).unwrap();
        let fe = HestenesSvd::new(fe_opts()).compute(a).unwrap();
        assert!(
            checks::spectrum_distance(&fe.svd.sigma, &direct.svd.sigma)
                < tol * direct.svd.sigma.first().copied().unwrap_or(1.0).max(1.0),
            "spectra diverge: {:?} vs {:?}",
            fe.svd.sigma,
            direct.svd.sigma
        );
        assert!(fe.svd.residual(a) < tol, "residual {}", fe.svd.residual(a));
        assert!(fe.svd.orthogonality() < tol, "orthogonality {}", fe.svd.orthogonality());
    }

    #[test]
    fn engage_rule_honors_crossover_and_shape() {
        let o = fe_opts();
        assert!(engages(&o, 128, 16)); // aspect 8 = default crossover
        assert!(!engages(&o, 127, 16));
        assert!(!engages(&o, 16, 16), "square inputs gain nothing");
        assert!(!engages(&SvdOptions::default(), 4096, 8), "front-end is opt-in");
        let o = fe_opts().with_qr_crossover(0.0);
        assert!(engages(&o, 17, 16), "crossover floors at 1 (strictly tall)");
        assert!(!engages(&o, 16, 16), "square stays direct even at crossover 0");
    }

    #[test]
    fn frontend_matches_direct_jacobi() {
        let a = generate::random_uniform(160, 12, 21);
        let run = HestenesSvd::new(fe_opts()).compute(&a).unwrap();
        assert!(run.qr_frontend, "the front-end must actually engage");
        assert_matches_direct(&a, 1e-9);
    }

    #[test]
    fn aspect_ratio_sweep() {
        // m/n ∈ {1, 8, 4096}: square skips the front-end, the others take it
        for (m, n, expect_fe) in [(24usize, 24usize, false), (96, 12, true), (8192, 2, true)] {
            let a = generate::random_uniform(m, n, (m ^ n) as u64);
            let run = HestenesSvd::new(fe_opts()).compute(&a).unwrap();
            assert_eq!(run.qr_frontend, expect_fe, "{m}x{n}");
            assert!(run.svd.residual(&a) < 1e-9, "{m}x{n}: {}", run.svd.residual(&a));
            assert!(run.svd.orthogonality() < 1e-10, "{m}x{n}");
            assert!(checks::is_nonincreasing(&run.svd.sigma), "{m}x{n}");
        }
    }

    #[test]
    fn wide_input_routes_through_transposed_frontend() {
        // m < n: the driver transposes, the front-end engages on Aᵀ, and
        // the U/V swap restores A = UΣVᵀ
        let at = generate::with_singular_values(96, &[7.0, 3.0, 1.0, 0.25], 22);
        let a = at.transpose(); // 4 × 96
        let run = HestenesSvd::new(fe_opts()).compute(&a).unwrap();
        assert!(run.transposed && run.qr_frontend);
        let recon =
            checks::reconstruction_residual(&a.transpose(), &run.svd.v, &run.svd.sigma, &run.svd.u);
        assert!(recon < 1e-10, "residual {recon}");
        assert!(checks::spectrum_distance(&run.svd.sigma, &[7.0, 3.0, 1.0, 0.25]) < 1e-10);
    }

    #[test]
    fn rank_deficient_tall_input() {
        let a = generate::rank_deficient(200, 10, 4, 23);
        let run = HestenesSvd::new(fe_opts()).compute(&a).unwrap();
        assert!(run.qr_frontend);
        assert_eq!(run.svd.rank, 4);
        assert!(run.svd.orthogonality() < 1e-10, "U completion must survive Q");
        assert!(run.svd.residual(&a) < 1e-10);
    }

    #[test]
    fn known_spectrum_is_preserved_exactly_enough() {
        let sigma = [40.0, 8.0, 1.0, 1e-4];
        let tall = generate::with_singular_values(8, &sigma, 24);
        // embed the 8×4-spectrum matrix into a 512×4 tall one via QR-like
        // stacking: repeat the rows (scales the spectrum by sqrt(64))
        let mut a = Matrix::zeros(512, 4).unwrap();
        for j in 0..4 {
            let src = tall.col(j);
            for r in 0..64 {
                a.col_mut(j)[r * 8..(r + 1) * 8].copy_from_slice(src);
            }
        }
        let scale = 8.0; // sqrt(64)
        let run = HestenesSvd::new(fe_opts()).compute(&a).unwrap();
        assert!(run.qr_frontend);
        for (got, want) in run.svd.sigma.iter().zip(sigma.iter()) {
            assert!(
                (got - scale * want).abs() < 1e-9 * scale * sigma[0],
                "{got} vs {}",
                scale * want
            );
        }
    }

    #[test]
    fn every_driver_times_vectors_agrees() {
        let a = generate::random_uniform(144, 8, 25);
        let reference = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        for vectors in [true, false] {
            // simulated driver
            let sim = HestenesSvd::new(fe_opts().with_vectors(vectors)).compute(&a).unwrap();
            assert!(sim.qr_frontend, "vectors={vectors}");
            assert!(
                checks::spectrum_distance(&sim.svd.sigma, &reference.svd.sigma) < 1e-9,
                "sim vectors={vectors}"
            );
            // distributed driver
            let dist =
                HestenesSvd::new(fe_opts().with_vectors(vectors)).compute_distributed(&a).unwrap();
            assert!(dist.qr_frontend, "vectors={vectors}");
            assert!(
                checks::spectrum_distance(&dist.svd.sigma, &reference.svd.sigma) < 1e-9,
                "dist vectors={vectors}"
            );
            // blocked driver
            let mut bopts = BlockedOptions::for_processors(2);
            bopts.svd = fe_opts().with_vectors(vectors);
            let blk = blocked_svd(&a, &bopts).unwrap();
            assert!(blk.qr_frontend, "vectors={vectors}");
            assert!(
                checks::spectrum_distance(&blk.svd.sigma, &reference.svd.sigma) < 1e-9,
                "blocked vectors={vectors}"
            );
            if vectors {
                assert!(sim.svd.residual(&a) < 1e-9);
                assert!(dist.svd.residual(&a) < 1e-9);
                assert!(blk.svd.residual(&a) < 1e-9);
            }
        }
    }

    #[test]
    fn blocked_frontend_counts_allocs_and_stays_orthogonal() {
        let a = generate::random_uniform(512, 16, 26);
        let mut opts = BlockedOptions::for_processors(2);
        opts.svd = fe_opts().with_hier_blocking(HierBlocking::Off);
        let run = blocked_svd(&a, &opts).unwrap();
        assert!(run.qr_frontend);
        assert_eq!(run.steady_alloc_events, 0, "QR + blocked stage must be steady-state clean");
        assert!(run.svd.orthogonality() < 1e-10);
        assert!(run.svd.residual(&a) < 1e-9);
    }

    #[test]
    fn frontend_below_crossover_is_bitwise_direct() {
        // an engaged-off run must be *identical* to the plain driver, not
        // just close: the option defaults cannot perturb existing results
        let a = generate::random_uniform(40, 16, 27);
        let direct = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        let fe = HestenesSvd::new(fe_opts()).compute(&a).unwrap(); // aspect 2.5 < 8
        assert!(!fe.qr_frontend);
        assert_eq!(direct.svd.sigma, fe.svd.sigma);
        assert_eq!(direct.svd.u, fe.svd.u);
        assert_eq!(direct.svd.v, fe.svd.v);
    }
}
