//! Sequential cyclic-by-rows one-sided Jacobi SVD — the reference
//! implementation every parallel ordering is cross-checked against.
//!
//! This is the textbook Hestenes method (\[7\], \[2\]): sweep over all
//! pairs `(i, j)`, `i < j`, in row-cyclic order, orthogonalizing each; stop
//! when a sweep applies no rotation. It shares the rotation kernels with
//! the parallel path but none of the scheduling machinery.

use crate::options::SvdError;
use crate::result::{complete_orthonormal, Svd};
use treesvd_matrix::rotation::orthogonalize_pair;
use treesvd_matrix::Matrix;

/// Result of the sequential reference.
#[derive(Debug)]
pub struct SequentialRun {
    /// The decomposition.
    pub svd: Svd,
    /// Sweeps used.
    pub sweeps: usize,
    /// Per-sweep rotation counts.
    pub rotations_per_sweep: Vec<usize>,
}

/// Compute the SVD of `a` (any shape) by sequential cyclic-by-rows
/// one-sided Jacobi with sorted (descending) singular values.
///
/// # Errors
/// [`SvdError::EmptyMatrix`] or [`SvdError::NoConvergence`].
pub fn sequential_svd(a: &Matrix, max_sweeps: usize) -> Result<SequentialRun, SvdError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SvdError::EmptyMatrix);
    }
    if a.rows() < a.cols() {
        let at = a.transpose();
        let mut run = sequential_svd(&at, max_sweeps)?;
        std::mem::swap(&mut run.svd.u, &mut run.svd.v);
        return Ok(run);
    }

    let (m, n) = a.shape();
    let mut h = a.clone();
    let mut v = Matrix::identity(n, n).map_err(|_| SvdError::EmptyMatrix)?;
    let threshold = n as f64 * f64::EPSILON;

    let mut rotations_per_sweep = Vec::new();
    let mut converged = false;
    let mut last_coupling = 0.0_f64;
    for _ in 0..max_sweeps {
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        let mut max_coupling = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                // rotate the A columns and V columns with the same (c, s);
                // sort: larger norm goes to the smaller index i
                let (hc_i, hc_j) = h.col_pair_mut(i, j).expect("distinct columns");
                let out = orthogonalize_pair(hc_i, hc_j, threshold, true);
                let swapped_now = {
                    // orthogonalize_pair folds the swap via equation (3);
                    // replay the same decision on V
                    let (vi, vj) = v.col_pair_mut(i, j).expect("distinct columns");
                    replay_on_v(out, vi, vj)
                };
                if !out.rotation.skipped {
                    rotations += 1;
                }
                if swapped_now {
                    swaps += 1;
                }
                max_coupling = max_coupling.max(out.coupling);
            }
        }
        rotations_per_sweep.push(rotations);
        last_coupling = max_coupling;
        if rotations == 0 && swaps == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SvdError::NoConvergence { sweeps: rotations_per_sweep.len(), last_coupling });
    }

    // extract
    let norms: Vec<f64> = (0..n).map(|j| h.col_norm(j)).collect();
    let max_norm = norms.iter().fold(0.0_f64, |acc, &x| acc.max(x));
    let rank_tol = max_norm * n as f64 * f64::EPSILON;
    let mut u = Matrix::zeros(m, n).map_err(|_| SvdError::EmptyMatrix)?;
    let mut sigma = vec![0.0; n];
    let mut zero_cols = Vec::new();
    for j in 0..n {
        if norms[j] > rank_tol {
            sigma[j] = norms[j];
            let mut col = h.col(j).to_vec();
            treesvd_matrix::ops::scal(1.0 / norms[j], &mut col);
            u.set_col(j, &col);
        } else {
            zero_cols.push(j);
        }
    }
    let rank = n - zero_cols.len();
    complete_orthonormal(&mut u, &zero_cols);

    Ok(SequentialRun {
        svd: Svd { u, sigma, v, rank },
        sweeps: rotations_per_sweep.len(),
        rotations_per_sweep,
    })
}

/// Apply the same rotation (and swap decision) to the V column pair;
/// returns whether a swap happened.
fn replay_on_v(out: treesvd_matrix::rotation::PairOutcome, vi: &mut [f64], vj: &mut [f64]) -> bool {
    use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped};
    let rot = out.rotation;
    if out.used_swap {
        apply_rotation_swapped(rot, vi, vj);
        true
    } else {
        apply_rotation(rot, vi, vj);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::{checks, generate};

    #[test]
    fn sequential_matches_construction() {
        let sigma = [7.0, 3.0, 1.0];
        let a = generate::with_singular_values(8, &sigma, 21);
        let run = sequential_svd(&a, 40).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-10);
        assert!(run.svd.residual(&a) < 1e-12);
        assert!(run.svd.orthogonality() < 1e-12);
    }

    #[test]
    fn sequential_handles_wide() {
        let at = generate::with_singular_values(9, &[5.0, 2.0], 22);
        let a = at.transpose();
        let run = sequential_svd(&a, 40).unwrap();
        assert_eq!(run.svd.sigma.len(), 2);
        let recon =
            checks::reconstruction_residual(&a.transpose(), &run.svd.v, &run.svd.sigma, &run.svd.u);
        assert!(recon < 1e-12);
    }

    #[test]
    fn sequential_rank_deficient() {
        let a = generate::rank_deficient(8, 5, 2, 23);
        let run = sequential_svd(&a, 40).unwrap();
        assert_eq!(run.svd.rank, 2);
        assert!(run.svd.orthogonality() < 1e-11);
    }

    #[test]
    fn rotations_decrease_across_sweeps() {
        let a = generate::random_uniform(20, 12, 24);
        let run = sequential_svd(&a, 40).unwrap();
        let r = &run.rotations_per_sweep;
        assert!(r.len() >= 3);
        assert_eq!(*r.last().unwrap(), 0);
        assert!(r[0] >= r[r.len() - 2]);
    }

    #[test]
    fn non_convergence_reports_actual_coupling() {
        // one sweep is never enough for a coupled random matrix, so the
        // error must carry the real last max coupling, not a NaN
        let a = generate::random_uniform(16, 10, 26);
        match sequential_svd(&a, 1) {
            Err(SvdError::NoConvergence { sweeps, last_coupling }) => {
                assert_eq!(sweeps, 1);
                assert!(last_coupling.is_finite(), "coupling is {last_coupling}");
                assert!(last_coupling > 0.0);
                assert!(last_coupling <= 1.0 + 1e-12);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn agrees_with_parallel_driver() {
        let a = generate::random_uniform(18, 14, 25);
        let seq = sequential_svd(&a, 40).unwrap();
        let par = crate::HestenesSvd::new(crate::SvdOptions::default()).compute(&a).unwrap();
        assert!(checks::spectrum_distance(&seq.svd.sigma, &par.svd.sigma) < 1e-9);
    }
}
