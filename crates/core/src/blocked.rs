//! Blocked execution for undersized machines (Schreiber \[14\]).
//!
//! The paper's orderings assume one column pair per processor, i.e.
//! `P = n/2`. Real machines are *undersized*: the ANU CM-5 had 32 nodes
//! but problems have hundreds of columns. Schreiber's partitioning — which
//! §5 builds its block ring ordering on — fixes this by letting every slot
//! hold a *block* of `c` columns: the same sweep schedules then move
//! blocks instead of single columns, and a "rotation" of a resident pair
//! becomes a full orthogonalization pass over the two blocks' columns.
//!
//! When the blocks `(X, Y)` of a super-pair meet, one cyclic pass
//! orthogonalizes every column pair of `X ∪ Y` with the sorted-storage
//! rule, so at convergence the norms are globally ordered exactly as in
//! the unblocked case (the block ordering meets every block pair, and
//! within a meeting the columns are fully sorted — an odd-even-merge
//! argument at block granularity). Termination is unchanged: a full sweep
//! with no rotation and no interchange anywhere.
//!
//! # Meeting kernels
//!
//! Two interchangeable kernels implement the meeting
//! ([`BlockKernel`]): the **pairwise** oracle streams the full `m`-length
//! columns through [`orthogonalize_pair`] O(c²) times, while the default
//! **Gram** kernel is block one-sided Jacobi (Bečka–Okša–Vajteršic): it
//! forms the `2c×2c` Gram matrix `G = [X Y]ᵀ[X Y]` once
//! ([`ops::gram_block`]), runs the same cyclic pass with sorted storage on
//! `G` *in cache* — identical rotation and interchange decisions, since
//! `compute_rotation` only ever consumes the Gram entries — while
//! accumulating the `2c×2c` orthogonal update `W`, and finally applies
//! `[X Y] ← [X Y]·W` (and the `V` panel) as one blocked panel multiply
//! ([`ops::panel_update`]). The panel is read O(1) times per meeting
//! instead of O(c), which is what turns the dominant cost into
//! BLAS-3-shaped work. Convergence is preserved because the meeting still
//! fully orthogonalizes and sorts `X ∪ Y`: `G` is rebuilt from the actual
//! columns at every meeting, so thresholds see no accumulated drift, and
//! the termination rule (a full block sweep with no rotation and no
//! interchange) is evaluated on the same quantities as the pairwise path.
//!
//! Meetings of distinct processors touch disjoint blocks, so each step
//! fans the `P` meetings out over the persistent worker pool
//! ([`treesvd_sim::par`]) with one scratch arena per lane; after the first
//! sweep the driver performs no allocation (block movement swaps
//! pre-allocated buffers, and the Gram/`W`/tile scratches are reused).

use crate::options::{BlockKernel, HierBlocking, OrderingChoice, SvdError, SvdOptions};
use crate::result::{complete_orthonormal, Svd};
use treesvd_matrix::ops;
use treesvd_matrix::rotation::{
    apply_rotation, apply_rotation_swapped, compute_rotation, orthogonalize_pair,
};
use treesvd_matrix::Matrix;
use treesvd_orderings::JacobiOrdering;
use treesvd_sim::par;

/// Options for the blocked driver: the machine size plus the usual knobs.
#[derive(Debug)]
pub struct BlockedOptions {
    /// Number of physical processors `P`; the columns are distributed over
    /// `2P` block slots.
    pub processors: usize,
    /// Everything else (ordering, threshold, sweep cap, sorting, vectors,
    /// meeting kernel, thread budget).
    pub svd: SvdOptions,
}

impl BlockedOptions {
    /// Default options for a `P`-processor machine.
    pub fn for_processors(processors: usize) -> Self {
        Self { processors, svd: SvdOptions::default() }
    }
}

/// Result of a blocked run.
#[derive(Debug)]
pub struct BlockedRun {
    /// The decomposition of the (unpadded) input.
    pub svd: Svd,
    /// Sweeps of the block-level ordering performed.
    pub sweeps: usize,
    /// Columns per block slot (after padding).
    pub block_size: usize,
    /// Total column rotations applied.
    pub total_rotations: usize,
    /// Scratch allocation events after the first sweep (warm-up). Zero in
    /// steady state: every meeting reuses its lane's Gram/`W`/tile arena
    /// and block movement swaps pre-allocated buffers. When the QR
    /// front-end engaged, the factorization's own steady-state counter
    /// ([`treesvd_matrix::qr::QrStats::steady_alloc_events`]) is folded
    /// in, so this stays the single zero-alloc gate for the whole
    /// pipeline.
    pub steady_alloc_events: u64,
    /// Whether the tall-skinny QR front-end engaged (the sweeps ran on
    /// the `n×n` factor `R`; see [`SvdOptions::qr_frontend`]).
    pub qr_frontend: bool,
}

/// One block slot: `c` columns of `A` (and optionally of the accumulated
/// `V`) stored contiguously column-major, in label order.
#[derive(Debug, Clone, Default)]
struct BlockSlot {
    /// `c` columns × `m` rows.
    a: Vec<f64>,
    /// `c` columns × `n_pad` rows; empty when vectors are off.
    v: Vec<f64>,
}

/// Per-lane scratch for the Gram meeting: the `2c×2c` Gram matrix, the
/// accumulated orthogonal update, and the panel-multiply tile. Reused
/// across meetings; `alloc_events` counts buffer growth (zero after
/// warm-up).
#[derive(Debug, Default)]
struct MeetingScratch {
    g: Vec<f64>,
    w: Vec<f64>,
    tile: Vec<f64>,
    alloc_events: u64,
}

impl MeetingScratch {
    fn grow(buf: &mut Vec<f64>, len: usize, events: &mut u64) {
        if buf.capacity() < len {
            *events += 1;
        }
        buf.resize(len, 0.0);
    }

    fn ensure(&mut self, k: usize) {
        Self::grow(&mut self.g, k * k, &mut self.alloc_events);
        Self::grow(&mut self.w, k * k, &mut self.alloc_events);
        Self::grow(&mut self.tile, k * ops::PANEL_TILE, &mut self.alloc_events);
    }
}

/// Immutable per-run context shared by every meeting.
#[derive(Clone, Copy)]
struct MeetCtx {
    /// Rows of the `A` columns.
    m: usize,
    /// Rows of the `V` columns (`0` when vectors are off).
    v_len: usize,
    threshold: f64,
    sort: bool,
    kernel: BlockKernel,
    /// Union width above which a Gram meeting splits into cache-sized
    /// sub-block pairs (`usize::MAX` disables the hierarchical level).
    hier_cols: usize,
}

/// Compute the SVD of `a` on an undersized machine of `opts.processors`
/// processors using blocked sweeps.
///
/// # Errors
/// As [`crate::HestenesSvd::compute`].
///
/// # Panics
/// Panics if `opts.processors == 0`.
pub fn blocked_svd(a: &Matrix, opts: &BlockedOptions) -> Result<BlockedRun, SvdError> {
    blocked_svd_inner(a, opts, true)
}

/// The blocked driver behind the front-end gate: `allow_frontend` is
/// dropped for the recursive solve on `R` (square, but a degenerate
/// crossover setting must not re-enter the factorization).
pub(crate) fn blocked_svd_inner(
    a: &Matrix,
    opts: &BlockedOptions,
    allow_frontend: bool,
) -> Result<BlockedRun, SvdError> {
    assert!(opts.processors > 0, "need at least one processor");
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SvdError::EmptyMatrix);
    }
    if a.rows() < a.cols() {
        let at = a.transpose();
        let mut run = blocked_svd_inner(&at, opts, allow_frontend)?;
        std::mem::swap(&mut run.svd.u, &mut run.svd.v);
        return Ok(run);
    }
    if allow_frontend && crate::tall::engages(&opts.svd, a.rows(), a.cols()) {
        let qr = crate::tall::factor(a, &opts.svd)?;
        let mut run = blocked_svd_inner(qr.r(), opts, false)?;
        run.svd.u = crate::tall::back_transform(&qr, &run.svd.u, crate::tall::lanes(&opts.svd));
        run.steady_alloc_events += qr.stats().steady_alloc_events;
        run.qr_frontend = true;
        return Ok(run);
    }

    let (m, n) = a.shape();
    let n_super = 2 * opts.processors;
    // block size: smallest c with n <= c * n_super
    let c = n.div_ceil(n_super).max(1);
    let n_pad = c * n_super;

    // A single processor needs no ordering: both blocks are resident and
    // every sweep is one meeting of the pair.
    let ordering: Option<Box<dyn JacobiOrdering>> = if n_super > 2 {
        Some(match &opts.svd.ordering {
            OrderingChoice::Kind(k) => k.build(n_super)?,
            OrderingChoice::Custom(f) => f(n_super)?,
        })
    } else {
        None
    };

    // distribute columns: super-slot s holds labels [s*c, (s+1)*c),
    // stored contiguously per slot (padding columns stay zero)
    let vectors = opts.svd.vectors;
    let mut slots: Vec<BlockSlot> = (0..n_super)
        .map(|s| {
            let mut a_buf = vec![0.0; c * m];
            let mut v_buf = if vectors { vec![0.0; c * n_pad] } else { Vec::new() };
            for k in 0..c {
                let j = s * c + k;
                if j < n {
                    a_buf[k * m..(k + 1) * m].copy_from_slice(a.col(j));
                }
                if vectors {
                    v_buf[k * n_pad + j] = 1.0;
                }
            }
            BlockSlot { a: a_buf, v: v_buf }
        })
        .collect();

    // Cache-level (hierarchical) blocking threshold: a union panel wider
    // than this is met as cyclic passes over sub-block pairs whose
    // working set (two sub-panels of `m`-length columns) fits in roughly
    // a quarter of L2, keeping the Gram kernel's panel reads cache-
    // resident — Novaković's multi-level scheme (arXiv 1401.2720).
    let hier_cols = match opts.svd.hier {
        HierBlocking::Off => usize::MAX,
        HierBlocking::Cols(w) => w.max(4),
        HierBlocking::Auto => ((treesvd_matrix::cache::l2_bytes() / 4) / (8 * m)).max(8),
    };

    let ctx = MeetCtx {
        m,
        v_len: if vectors { n_pad } else { 0 },
        threshold: opts.svd.threshold.unwrap_or(n_pad as f64 * f64::EPSILON),
        sort: matches!(opts.svd.sort, treesvd_sim::SortMode::Descending),
        kernel: opts.svd.block_kernel,
        hier_cols,
    };

    // Adaptive dispatch over the persistent pool: fork only when a step's
    // meetings move enough data, and never more lanes than processors.
    let lanes = opts.svd.threads.unwrap_or_else(par::num_threads);
    let step_work = opts.processors * 2 * c * (m + ctx.v_len);
    let tasks =
        if step_work < opts.svd.serial_cutoff { 1 } else { lanes.min(opts.processors).max(1) };
    let mut scratches: Vec<MeetingScratch> =
        (0..tasks).map(|_| MeetingScratch::default()).collect();

    // double-buffered block movement: `spare` is swapped in every step, so
    // the steady-state loop never allocates
    let mut spare: Vec<BlockSlot> = (0..n_super).map(|_| BlockSlot::default()).collect();

    let mut layout = ordering.as_ref().map_or_else(|| vec![0, 1], |o| o.initial_layout());
    let mut sweeps = 0usize;
    let mut total_rotations = 0usize;
    let mut warm_alloc = 0u64;
    let mut converged = false;

    for sweep in 0..opts.svd.max_sweeps {
        let mut rotations = 0usize;
        let mut swaps = 0usize;

        if let Some(ordering) = ordering.as_deref() {
            let prog = ordering.sweep_program(sweep, &layout);
            let layouts = prog.layouts();
            for (step_no, step) in prog.steps.iter().enumerate() {
                let lay = &layouts[step_no];
                let (r, s) = meet_range(&mut slots, lay, &mut scratches, tasks, &ctx);
                rotations += r;
                swaps += s;
                // move the blocks (pointer swaps only)
                for (src, slot) in slots.iter_mut().enumerate() {
                    spare[step.move_after.dest_of(src)] = std::mem::take(slot);
                }
                std::mem::swap(&mut slots, &mut spare);
            }
            layout = prog.final_layout();
        } else {
            let (r, s) = meet_leaf(&mut slots, &layout, &ctx, &mut scratches[0]);
            rotations += r;
            swaps += s;
        }
        total_rotations += rotations;
        sweeps = sweep + 1;
        if sweep == 0 {
            warm_alloc = scratches.iter().map(|s| s.alloc_events).sum();
        }
        if rotations == 0 && swaps == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SvdError::NoConvergence { sweeps, last_coupling: f64::NAN });
    }
    let steady_alloc_events = scratches.iter().map(|s| s.alloc_events).sum::<u64>() - warm_alloc;

    // locate each label's column: label block `layout[s]` lives in slot s
    let mut locate: Vec<(usize, usize)> = vec![(0, 0); n_pad];
    for (s, &label_block) in layout.iter().enumerate() {
        for k in 0..c {
            locate[label_block * c + k] = (s, k);
        }
    }

    // extraction (mirrors the unblocked driver)
    let col_of = |j: usize| -> &[f64] {
        let (s, k) = locate[j];
        &slots[s].a[k * m..(k + 1) * m]
    };
    let norms: Vec<f64> = (0..n).map(|j| ops::norm2(col_of(j))).collect();
    let max_norm = norms.iter().fold(0.0_f64, |acc, &x| acc.max(x));
    let rank_tol = max_norm * n_pad as f64 * f64::EPSILON;
    let mut u = Matrix::zeros(m, n).map_err(|_| SvdError::EmptyMatrix)?;
    let mut sigma = vec![0.0; n];
    let mut zero_u = Vec::new();
    for j in 0..n {
        if norms[j] > rank_tol {
            sigma[j] = norms[j];
            let mut col = col_of(j).to_vec();
            ops::scal(1.0 / norms[j], &mut col);
            u.set_col(j, &col);
        } else {
            zero_u.push(j);
        }
    }
    let rank = n - zero_u.len();
    complete_orthonormal(&mut u, &zero_u);

    let v = if vectors {
        let mut v = Matrix::zeros(n, n).map_err(|_| SvdError::EmptyMatrix)?;
        let mut zero_v = Vec::new();
        for j in 0..n {
            let (s, k) = locate[j];
            let vj = &slots[s].v[k * n_pad..(k + 1) * n_pad];
            let head_norm = ops::norm2(&vj[..n]);
            if sigma[j] > 0.0 || head_norm > 0.5 {
                v.set_col(j, &vj[..n]);
            } else {
                zero_v.push(j);
            }
        }
        complete_orthonormal(&mut v, &zero_v);
        v
    } else {
        Matrix::identity(n, n).map_err(|_| SvdError::EmptyMatrix)?
    };

    Ok(BlockedRun {
        svd: Svd { u, sigma, v, rank },
        sweeps,
        block_size: c,
        total_rotations,
        steady_alloc_events,
        qr_frontend: false,
    })
}

/// Run the step's `P` independent meetings, forking into at most `tasks`
/// leaves over the persistent pool (each leaf owns one scratch arena).
/// Returns (rotations, interchanges).
fn meet_range(
    pairs: &mut [BlockSlot],
    lay: &[usize],
    scratches: &mut [MeetingScratch],
    tasks: usize,
    ctx: &MeetCtx,
) -> (usize, usize) {
    let n_pairs = pairs.len() / 2;
    if tasks <= 1 || n_pairs <= 1 || scratches.len() <= 1 {
        return meet_leaf(pairs, lay, ctx, &mut scratches[0]);
    }
    let mid = n_pairs / 2;
    let (pl, pr) = pairs.split_at_mut(2 * mid);
    let (ll, lr) = lay.split_at(2 * mid);
    let left_tasks = tasks / 2;
    let (sl, sr) = scratches.split_at_mut(left_tasks.max(1));
    let ((r1, w1), (r2, w2)) = par::join(
        || meet_range(pl, ll, sl, left_tasks, ctx),
        || meet_range(pr, lr, sr, tasks - left_tasks, ctx),
    );
    (r1 + r2, w1 + w2)
}

/// Serial leaf: every processor's meeting in this range, in order.
fn meet_leaf(
    pairs: &mut [BlockSlot],
    lay: &[usize],
    ctx: &MeetCtx,
    scratch: &mut MeetingScratch,
) -> (usize, usize) {
    let mut rotations = 0usize;
    let mut swaps = 0usize;
    for (p, chunk) in pairs.chunks_exact_mut(2).enumerate() {
        let (first, second) = chunk.split_at_mut(1);
        // the two resident blocks, in label order
        let (lo, hi) = if lay[2 * p] < lay[2 * p + 1] {
            (&mut first[0], &mut second[0])
        } else {
            (&mut second[0], &mut first[0])
        };
        let (r, s) = match ctx.kernel {
            BlockKernel::Pairwise => pairwise_meeting(lo, hi, ctx),
            BlockKernel::Gram => gram_meeting(lo, hi, ctx, scratch),
        };
        rotations += r;
        swaps += s;
    }
    (rotations, swaps)
}

/// Mutable references to columns `i < j` of the union `[X Y]` panel
/// (column length `rows`).
fn union_pair_mut<'t>(
    x: &'t mut [f64],
    y: &'t mut [f64],
    rows: usize,
    i: usize,
    j: usize,
) -> (&'t mut [f64], &'t mut [f64]) {
    debug_assert!(i < j);
    let cx = x.len() / rows;
    if j < cx {
        let (a, b) = x.split_at_mut(j * rows);
        (&mut a[i * rows..(i + 1) * rows], &mut b[..rows])
    } else if i >= cx {
        let (a, b) = y.split_at_mut((j - cx) * rows);
        (&mut a[(i - cx) * rows..(i - cx + 1) * rows], &mut b[..rows])
    } else {
        (&mut x[i * rows..(i + 1) * rows], &mut y[(j - cx) * rows..(j - cx + 1) * rows])
    }
}

/// Mutable references to columns `i < j` of a `k×k` column-major matrix.
fn two_cols(buf: &mut [f64], k: usize, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(i < j);
    let (head, tail) = buf.split_at_mut(k * j);
    (&mut head[k * i..k * (i + 1)], &mut tail[..k])
}

/// The pairwise (oracle) meeting: one cyclic pass over all column pairs of
/// the two resident blocks, in label order (the lower-labelled block's
/// columns first), streaming the full columns through
/// [`orthogonalize_pair`]. Returns (rotations, interchanges).
fn pairwise_meeting(lo: &mut BlockSlot, hi: &mut BlockSlot, ctx: &MeetCtx) -> (usize, usize) {
    let total = (lo.a.len() + hi.a.len()) / ctx.m;
    let mut rotations = 0usize;
    let mut swaps = 0usize;
    for i in 0..total {
        for j in (i + 1)..total {
            let (ai, aj) = union_pair_mut(&mut lo.a, &mut hi.a, ctx.m, i, j);
            let out = orthogonalize_pair(ai, aj, ctx.threshold, ctx.sort);
            if ctx.v_len > 0 {
                let (vi, vj) = union_pair_mut(&mut lo.v, &mut hi.v, ctx.v_len, i, j);
                if out.used_swap {
                    apply_rotation_swapped(out.rotation, vi, vj);
                } else {
                    apply_rotation(out.rotation, vi, vj);
                }
            }
            if !out.rotation.skipped {
                rotations += 1;
            }
            if out.used_swap {
                swaps += 1;
            }
        }
    }
    (rotations, swaps)
}

/// The Gram (block Jacobi) meeting. Below the hierarchical threshold the
/// whole union is met in one pass ([`gram_union`]); above it the union is
/// split into cache-sized sub-blocks and one cyclic pass runs the
/// in-cache kernel over every sub-block *pair* — each sub-meeting again
/// fully orthogonalizes and sorts its own union, so covering all pairs
/// covers every column pair of the meeting and the termination rule (no
/// rotation, no interchange anywhere) is evaluated on exactly the same
/// quantities as the flat path. Returns (rotations, interchanges).
fn gram_meeting(
    lo: &mut BlockSlot,
    hi: &mut BlockSlot,
    ctx: &MeetCtx,
    scratch: &mut MeetingScratch,
) -> (usize, usize) {
    let cx = lo.a.len() / ctx.m;
    let cy = hi.a.len() / ctx.m;
    if cx + cy <= ctx.hier_cols {
        return gram_union(&mut lo.a, &mut hi.a, &mut lo.v, &mut hi.v, ctx, scratch);
    }
    hierarchical_meeting(lo, hi, cx, cy, ctx, scratch)
}

/// Two disjoint column ranges `[s0, s0+w0)` and `[s1, s1+w1)` (with
/// `s0 + w0 ≤ s1`) of one column-major panel, as mutable slices.
fn two_ranges(
    buf: &mut [f64],
    rows: usize,
    s0: usize,
    w0: usize,
    s1: usize,
    w1: usize,
) -> (&mut [f64], &mut [f64]) {
    if rows == 0 {
        return buf.split_at_mut(0); // vectors off: both empty
    }
    debug_assert!(s0 + w0 <= s1);
    let (head, tail) = buf.split_at_mut(s1 * rows);
    (&mut head[s0 * rows..(s0 + w0) * rows], &mut tail[..w1 * rows])
}

/// The hierarchical (cache-level) meeting: sub-blocks of half the
/// threshold width, enumerated in label order (`lo`'s columns first, so
/// the sorted-storage rule still sorts the whole union), met pairwise by
/// the in-cache Gram kernel.
fn hierarchical_meeting(
    lo: &mut BlockSlot,
    hi: &mut BlockSlot,
    cx: usize,
    cy: usize,
    ctx: &MeetCtx,
    scratch: &mut MeetingScratch,
) -> (usize, usize) {
    let cb = (ctx.hier_cols / 2).max(2);
    let nbx = cx.div_ceil(cb);
    let nby = cy.div_ceil(cb);
    // sub-block b → (lives in hi, first column, width); never straddles
    // the lo/hi boundary, so every range is one contiguous slice
    let locate = |b: usize| -> (bool, usize, usize) {
        if b < nbx {
            let s = b * cb;
            (false, s, cb.min(cx - s))
        } else {
            let s = (b - nbx) * cb;
            (true, s, cb.min(cy - s))
        }
    };
    let vr = |s: usize, w: usize| {
        if ctx.v_len > 0 {
            s * ctx.v_len..(s + w) * ctx.v_len
        } else {
            0..0
        }
    };
    let nb = nbx + nby;
    let mut rotations = 0usize;
    let mut swaps = 0usize;
    for p in 0..nb {
        for q in (p + 1)..nb {
            let (q_in_hi, sq, wq) = locate(q);
            let (p_in_hi, sp, wp) = locate(p);
            let (r, s) = match (p_in_hi, q_in_hi) {
                (false, false) => {
                    let (xa, ya) = two_ranges(&mut lo.a, ctx.m, sp, wp, sq, wq);
                    let (xv, yv) = two_ranges(&mut lo.v, ctx.v_len, sp, wp, sq, wq);
                    gram_union(xa, ya, xv, yv, ctx, scratch)
                }
                (true, true) => {
                    let (xa, ya) = two_ranges(&mut hi.a, ctx.m, sp, wp, sq, wq);
                    let (xv, yv) = two_ranges(&mut hi.v, ctx.v_len, sp, wp, sq, wq);
                    gram_union(xa, ya, xv, yv, ctx, scratch)
                }
                (false, true) => gram_union(
                    &mut lo.a[sp * ctx.m..(sp + wp) * ctx.m],
                    &mut hi.a[sq * ctx.m..(sq + wq) * ctx.m],
                    &mut lo.v[vr(sp, wp)],
                    &mut hi.v[vr(sq, wq)],
                    ctx,
                    scratch,
                ),
                (true, false) => unreachable!("sub-blocks are enumerated lo-first"),
            };
            rotations += r;
            swaps += s;
        }
    }
    (rotations, swaps)
}

/// One flat Gram meeting over the union `[X Y]` given as raw column
/// panels (`xa`/`ya` the `A` columns, `xv`/`yv` the matching `V` columns,
/// empty when vectors are off): build `G = [X Y]ᵀ[X Y]`, run the cyclic
/// sorted pass on `G` in cache while accumulating the orthogonal update
/// `W`, then apply `[X Y] ← [X Y]·W` (and the `V` panel) as one blocked
/// panel multiply. The rotation and interchange decisions are computed
/// from exactly the Gram quantities the pairwise path measures, so both
/// kernels agree on what a meeting does (up to rounding in how the
/// updates are realized). Returns (rotations, interchanges).
fn gram_union(
    xa: &mut [f64],
    ya: &mut [f64],
    xv: &mut [f64],
    yv: &mut [f64],
    ctx: &MeetCtx,
    scratch: &mut MeetingScratch,
) -> (usize, usize) {
    let k = (xa.len() + ya.len()) / ctx.m;
    scratch.ensure(k);
    let MeetingScratch { g, w, tile, .. } = scratch;
    ops::gram_block(xa, ya, ctx.m, g);
    w.fill(0.0);
    for d in 0..k {
        w[d + k * d] = 1.0;
    }

    let mut rotations = 0usize;
    let mut swaps = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            let alpha = g[i + k * i];
            let beta = g[j + k * j];
            let gamma = g[i + k * j];
            let rot = compute_rotation(alpha, beta, gamma, ctx.threshold);
            // predicted post-rotation norms, exactly as orthogonalize_pair
            // decides the interchange
            let (alpha_pred, beta_pred) = if rot.skipped {
                (alpha, beta)
            } else {
                let (rc, rs) = (rot.c, rot.s);
                (
                    rc * rc * alpha - 2.0 * rc * rs * gamma + rs * rs * beta,
                    rs * rs * alpha + 2.0 * rc * rs * gamma + rc * rc * beta,
                )
            };
            let want_swap = ctx.sort && beta_pred > alpha_pred;
            if rot.skipped && !want_swap {
                continue;
            }
            // two-sided update G ← Jᵀ(G·J): columns i,j then rows i,j.
            // Rows above the pivot are dead for the rest of the sweep
            // (only entries in rows ≥ i are ever read again — see the
            // copy-back note below), so the column rotation starts at
            // row i.
            let (gi, gj) = two_cols(g, k, i, j);
            if want_swap {
                apply_rotation_swapped(rot, &mut gi[i..], &mut gj[i..]);
            } else {
                apply_rotation(rot, &mut gi[i..], &mut gj[i..]);
            }
            // rows i and j: G is kept bitwise symmetric, so for l ∉ {i, j}
            // the row entries are exactly the transposes of the columns
            // just updated — copy them instead of recomputing (the copied
            // values equal the arithmetic update bitwise, same expression
            // on identical inputs). Columns left of the pivot row are
            // dead: every remaining read of this sweep — γ, the
            // diagonals, and the rotation operands — touches only
            // columns ≥ i, and G is rebuilt from scratch at the next
            // meeting, so the copy starts at i + 1.
            for l in (i + 1)..k {
                if l != j {
                    g[i + k * l] = g[l + k * i];
                    g[j + k * l] = g[l + k * j];
                }
            }
            // the 2×2 diagonal block still needs the row-side arithmetic;
            // afterwards re-symmetrize its off-diagonal entry so the
            // invariant survives the rounding-order difference
            let (rc, rs) = (rot.c, rot.s);
            for l in [i, j] {
                let x = g[i + k * l];
                let y = g[j + k * l];
                if want_swap {
                    g[i + k * l] = rs * x + rc * y;
                    g[j + k * l] = rc * x - rs * y;
                } else {
                    g[i + k * l] = rc * x - rs * y;
                    g[j + k * l] = rs * x + rc * y;
                }
            }
            g[j + k * i] = g[i + k * j];
            // accumulate the panel update W ← W·J
            let (wi, wj) = two_cols(w, k, i, j);
            if want_swap {
                apply_rotation_swapped(rot, wi, wj);
            } else {
                apply_rotation(rot, wi, wj);
            }
            if !rot.skipped {
                rotations += 1;
            }
            if want_swap {
                swaps += 1;
            }
        }
    }

    if rotations > 0 || swaps > 0 {
        ops::panel_update(xa, ya, ctx.m, w, tile);
        if ctx.v_len > 0 {
            ops::panel_update(xv, yv, ctx.v_len, w, tile);
        }
    }
    (rotations, swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HestenesSvd, SvdOptions};
    use treesvd_matrix::{checks, generate};

    fn opts_with(processors: usize, kernel: BlockKernel) -> BlockedOptions {
        BlockedOptions { processors, svd: SvdOptions::default().with_block_kernel(kernel) }
    }

    #[test]
    fn blocked_matches_unblocked_spectra() {
        let a = generate::random_uniform(40, 32, 1);
        let full = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            for procs in [2usize, 4, 8] {
                let run = blocked_svd(&a, &opts_with(procs, kernel)).unwrap();
                assert_eq!(run.block_size, 32 / (2 * procs));
                assert!(
                    checks::spectrum_distance(&run.svd.sigma, &full.svd.sigma) < 1e-9,
                    "P = {procs} kernel = {kernel}"
                );
                assert!(run.svd.residual(&a) < 1e-10, "P = {procs} kernel = {kernel}");
                assert!(run.svd.orthogonality() < 1e-10, "P = {procs} kernel = {kernel}");
                assert!(checks::is_nonincreasing(&run.svd.sigma), "P = {procs} kernel = {kernel}");
            }
        }
    }

    #[test]
    fn blocked_handles_non_divisible_columns() {
        // 30 columns on 4 processors: c = ceil(30/8) = 4, padded to 32
        let a = generate::random_uniform(36, 30, 2);
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            let run = blocked_svd(&a, &opts_with(4, kernel)).unwrap();
            assert_eq!(run.svd.sigma.len(), 30);
            assert!(run.svd.residual(&a) < 1e-10, "kernel = {kernel}");
            assert!(run.svd.orthogonality() < 1e-10, "kernel = {kernel}");
        }
    }

    #[test]
    fn blocked_on_two_processors_known_spectrum() {
        let sigma: Vec<f64> = (1..=12).rev().map(|k| k as f64).collect();
        let a = generate::with_singular_values(20, &sigma, 3);
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            let run = blocked_svd(&a, &opts_with(2, kernel)).unwrap();
            assert!(checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-9, "kernel = {kernel}");
        }
    }

    #[test]
    fn blocked_rank_deficient() {
        let a = generate::rank_deficient(24, 16, 10, 4);
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            let run = blocked_svd(&a, &opts_with(4, kernel)).unwrap();
            assert_eq!(run.svd.rank, 10, "kernel = {kernel}");
            assert!(run.svd.orthogonality() < 1e-10, "kernel = {kernel}");
        }
    }

    #[test]
    fn blocked_wide_input() {
        let at = generate::with_singular_values(20, &[5.0, 3.0, 1.0], 5);
        let a = at.transpose();
        let run = blocked_svd(&a, &BlockedOptions::for_processors(2)).unwrap();
        assert_eq!(run.svd.sigma.len(), 3);
        let recon =
            checks::reconstruction_residual(&a.transpose(), &run.svd.v, &run.svd.sigma, &run.svd.u);
        assert!(recon < 1e-10);
    }

    #[test]
    fn blocked_sweep_counts_reasonable() {
        // blocked sweeps do more work per step, so fewer sweeps than the
        // unblocked driver on the same matrix
        let a = generate::random_uniform(48, 32, 6);
        let full = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        let run = blocked_svd(&a, &BlockedOptions::for_processors(4)).unwrap();
        assert!(run.sweeps <= full.sweeps, "{} vs {}", run.sweeps, full.sweeps);
        assert!(run.total_rotations > 0);
    }

    #[test]
    fn blocked_with_ring_ordering() {
        let a = generate::random_uniform(30, 24, 7);
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            let opts = BlockedOptions {
                processors: 3,
                svd: SvdOptions::default()
                    .with_ordering(crate::OrderingKind::NewRing)
                    .with_block_kernel(kernel),
            };
            let run = blocked_svd(&a, &opts).unwrap();
            assert!(run.svd.residual(&a) < 1e-10, "kernel = {kernel}");
            assert_eq!(run.block_size, 4);
        }
    }

    #[test]
    fn gram_kernel_is_zero_alloc_after_warmup() {
        let a = generate::random_uniform(96, 64, 8);
        let mut opts = opts_with(4, BlockKernel::Gram);
        // force the parallel path through the pool as well
        opts.svd.serial_cutoff = 0;
        let run = blocked_svd(&a, &opts).unwrap();
        assert!(run.sweeps > 1, "need a steady-state sweep to measure");
        assert_eq!(run.steady_alloc_events, 0);
    }

    #[test]
    fn kernels_agree_on_sigma_and_v() {
        // random c (via P and n), odd/padded sizes, rank-deficient panels
        // (P must keep 2P a power of two for the default fat-tree ordering)
        let cases: Vec<(Matrix, usize)> = vec![
            (generate::random_uniform(48, 30, 11), 2), // padded: 30 -> 32, c = 8
            (generate::random_uniform(33, 17, 12), 2), // odd everything, c = 5
            (generate::rank_deficient(40, 24, 9, 13), 4), // c = 3, rank 9
            (generate::with_singular_values(25, &[9.0, 4.0, 2.5, 1.0, 0.5], 14), 2),
        ];
        for (a, procs) in &cases {
            let pw = blocked_svd(a, &opts_with(*procs, BlockKernel::Pairwise)).unwrap();
            let gr = blocked_svd(a, &opts_with(*procs, BlockKernel::Gram)).unwrap();
            assert!(
                checks::spectrum_distance(&pw.svd.sigma, &gr.svd.sigma) < 1e-9,
                "sigma mismatch at P = {procs}"
            );
            assert_eq!(pw.svd.rank, gr.svd.rank, "rank mismatch at P = {procs}");
            // V agrees up to sign wherever the spectrum is well separated
            let n = gr.svd.sigma.len();
            for j in 0..n {
                let sep = |i: usize| {
                    (gr.svd.sigma[j] - gr.svd.sigma[i]).abs() > 1e-6 * gr.svd.sigma[0].max(1.0)
                };
                if gr.svd.sigma[j] > 1e-9 && (0..n).all(|i| i == j || sep(i)) {
                    let d = treesvd_matrix::ops::dot(pw.svd.v.col(j), gr.svd.v.col(j)).abs();
                    assert!(d > 1.0 - 1e-7, "V col {j} disagrees: |dot| = {d}");
                }
            }
        }
    }

    #[test]
    fn blocked_matches_sequential_over_processor_sweep() {
        // P = 1 exercises the trivial single-meeting schedule (no ordering)
        let a = generate::random_uniform(40, 28, 9);
        let seq = crate::sequential::sequential_svd(&a, 60).unwrap();
        for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
            for procs in [1usize, 2, 4, 8] {
                let run = blocked_svd(&a, &opts_with(procs, kernel)).unwrap();
                assert!(
                    checks::spectrum_distance(&run.svd.sigma, &seq.svd.sigma) < 1e-9,
                    "P = {procs} kernel = {kernel}"
                );
                assert!(run.svd.residual(&a) < 1e-10, "P = {procs} kernel = {kernel}");
                assert!(run.svd.orthogonality() < 1e-10, "P = {procs} kernel = {kernel}");
            }
        }
    }

    #[test]
    fn hierarchical_meetings_match_flat_gram() {
        // force the cache-level split with a tiny threshold: c = 8 gives
        // 16-column unions, split into sub-blocks of 4
        let a = generate::random_uniform(48, 32, 16);
        let flat = {
            let mut o = opts_with(2, BlockKernel::Gram);
            o.svd = o.svd.with_hier_blocking(HierBlocking::Off);
            blocked_svd(&a, &o).unwrap()
        };
        let hier = {
            let mut o = opts_with(2, BlockKernel::Gram);
            o.svd = o.svd.with_hier_blocking(HierBlocking::Cols(8));
            blocked_svd(&a, &o).unwrap()
        };
        assert!(
            checks::spectrum_distance(&flat.svd.sigma, &hier.svd.sigma) < 1e-9,
            "spectra diverge: {:?} vs {:?}",
            flat.svd.sigma,
            hier.svd.sigma
        );
        assert!(hier.svd.residual(&a) < 1e-10);
        assert!(hier.svd.orthogonality() < 1e-10);
        assert!(checks::is_nonincreasing(&hier.svd.sigma), "meetings must still sort the union");
        assert_eq!(flat.svd.rank, hier.svd.rank);
    }

    #[test]
    fn hierarchical_stays_zero_alloc_and_converges_on_hard_cases() {
        // rank-deficient + forced splits + the pool path
        let a = generate::rank_deficient(64, 24, 11, 17);
        let mut o = opts_with(2, BlockKernel::Gram);
        o.svd = o.svd.with_hier_blocking(HierBlocking::Cols(6));
        o.svd.serial_cutoff = 0;
        let run = blocked_svd(&a, &o).unwrap();
        assert_eq!(run.svd.rank, 11);
        assert!(run.sweeps > 1, "need a steady-state sweep to measure");
        assert_eq!(run.steady_alloc_events, 0);
        assert!(run.svd.orthogonality() < 1e-10);
    }

    #[test]
    fn auto_hier_is_inert_on_small_problems() {
        // Auto only engages when a union panel outgrows L2/4; at m = 40
        // the threshold is hundreds of columns, so Auto ≡ Off here and
        // results are bitwise identical
        let a = generate::random_uniform(40, 32, 18);
        let auto = blocked_svd(&a, &opts_with(2, BlockKernel::Gram)).unwrap();
        let off = {
            let mut o = opts_with(2, BlockKernel::Gram);
            o.svd = o.svd.with_hier_blocking(HierBlocking::Off);
            blocked_svd(&a, &o).unwrap()
        };
        assert_eq!(auto.svd.sigma, off.svd.sigma);
        assert_eq!(auto.svd.u, off.svd.u);
        assert_eq!(auto.svd.v, off.svd.v);
        assert_eq!(auto.sweeps, off.sweeps);
    }

    #[test]
    fn thread_cap_of_one_matches_default() {
        let a = generate::random_uniform(40, 32, 15);
        let base = blocked_svd(&a, &opts_with(4, BlockKernel::Gram)).unwrap();
        let mut opts = opts_with(4, BlockKernel::Gram);
        opts.svd.threads = Some(1);
        let capped = blocked_svd(&a, &opts).unwrap();
        // meetings are data-disjoint, so lane count cannot change results
        assert_eq!(base.svd.sigma, capped.svd.sigma);
        assert_eq!(base.sweeps, capped.sweeps);
    }
}
