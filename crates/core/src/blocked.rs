//! Blocked execution for undersized machines (Schreiber \[14\]).
//!
//! The paper's orderings assume one column pair per processor, i.e.
//! `P = n/2`. Real machines are *undersized*: the ANU CM-5 had 32 nodes
//! but problems have hundreds of columns. Schreiber's partitioning — which
//! §5 builds its block ring ordering on — fixes this by letting every slot
//! hold a *block* of `c` columns: the same sweep schedules then move
//! blocks instead of single columns, and a "rotation" of a resident pair
//! becomes a full orthogonalization pass over the two blocks' columns.
//!
//! When the blocks `(X, Y)` of a super-pair meet, one cyclic pass
//! orthogonalizes every column pair of `X ∪ Y` with the sorted-storage
//! rule, so at convergence the norms are globally ordered exactly as in
//! the unblocked case (the block ordering meets every block pair, and
//! within a meeting the columns are fully sorted — an odd-even-merge
//! argument at block granularity). Termination is unchanged: a full sweep
//! with no rotation and no interchange anywhere.

use crate::options::{OrderingChoice, SvdError, SvdOptions};
use crate::result::{complete_orthonormal, Svd};
use treesvd_matrix::rotation::orthogonalize_pair;
use treesvd_matrix::Matrix;
use treesvd_orderings::JacobiOrdering;

/// Options for the blocked driver: the machine size plus the usual knobs.
#[derive(Debug)]
pub struct BlockedOptions {
    /// Number of physical processors `P`; the columns are distributed over
    /// `2P` block slots.
    pub processors: usize,
    /// Everything else (ordering, threshold, sweep cap, sorting, vectors).
    pub svd: SvdOptions,
}

impl BlockedOptions {
    /// Default options for a `P`-processor machine.
    pub fn for_processors(processors: usize) -> Self {
        Self { processors, svd: SvdOptions::default() }
    }
}

/// Result of a blocked run.
#[derive(Debug)]
pub struct BlockedRun {
    /// The decomposition of the (unpadded) input.
    pub svd: Svd,
    /// Sweeps of the block-level ordering performed.
    pub sweeps: usize,
    /// Columns per block slot (after padding).
    pub block_size: usize,
    /// Total column rotations applied.
    pub total_rotations: usize,
}

/// A column with its (possibly empty) accumulated `V` column.
type ColPair = (Vec<f64>, Vec<f64>);

/// One block slot: `c` columns (and optional `V` columns) in label order.
#[derive(Debug, Clone, Default)]
struct BlockSlot {
    cols: Vec<ColPair>, // (a, v) pairs
}

/// Compute the SVD of `a` on an undersized machine of `opts.processors`
/// processors using blocked sweeps.
///
/// # Errors
/// As [`crate::HestenesSvd::compute`].
///
/// # Panics
/// Panics if `opts.processors == 0`.
pub fn blocked_svd(a: &Matrix, opts: &BlockedOptions) -> Result<BlockedRun, SvdError> {
    assert!(opts.processors > 0, "need at least one processor");
    if a.rows() == 0 || a.cols() == 0 {
        return Err(SvdError::EmptyMatrix);
    }
    if a.rows() < a.cols() {
        let at = a.transpose();
        let mut run = blocked_svd(&at, opts)?;
        std::mem::swap(&mut run.svd.u, &mut run.svd.v);
        return Ok(run);
    }

    let (m, n) = a.shape();
    let n_super = 2 * opts.processors;
    // block size: smallest c with n <= c * n_super
    let c = n.div_ceil(n_super).max(1);
    let n_pad = c * n_super;

    let ordering: Box<dyn JacobiOrdering> = match &opts.svd.ordering {
        OrderingChoice::Kind(k) => k.build(n_super)?,
        OrderingChoice::Custom(f) => f(n_super)?,
    };

    // distribute columns: super-slot s holds labels [s*c, (s+1)*c)
    let mut columns = a.clone().into_columns();
    columns.resize(n_pad, vec![0.0; m]);
    let vectors = opts.svd.vectors;
    let mut slots: Vec<BlockSlot> = (0..n_super)
        .map(|s| BlockSlot {
            cols: (0..c)
                .map(|k| {
                    let j = s * c + k;
                    let v = if vectors {
                        let mut e = vec![0.0; n_pad];
                        e[j] = 1.0;
                        e
                    } else {
                        Vec::new()
                    };
                    (std::mem::take(&mut columns[j]), v)
                })
                .collect(),
        })
        .collect();

    let threshold = opts.svd.threshold.unwrap_or(n_pad as f64 * f64::EPSILON);
    let sort = matches!(opts.svd.sort, treesvd_sim::SortMode::Descending);

    let mut layout = ordering.initial_layout();
    let mut sweeps = 0usize;
    let mut total_rotations = 0usize;
    let mut converged = false;

    for sweep in 0..opts.svd.max_sweeps {
        let prog = ordering.sweep_program(sweep, &layout);
        let layouts = prog.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;

        for (step_no, step) in prog.steps.iter().enumerate() {
            let lay = &layouts[step_no];
            for p in 0..opts.processors {
                // the two resident blocks, in label order
                let (s_lo, s_hi) = if lay[2 * p] < lay[2 * p + 1] {
                    (2 * p, 2 * p + 1)
                } else {
                    (2 * p + 1, 2 * p)
                };
                let (r, s) = local_pass(&mut slots, s_lo, s_hi, threshold, sort);
                rotations += r;
                swaps += s;
            }
            // move the blocks
            let mut next: Vec<BlockSlot> = (0..n_super).map(|_| BlockSlot::default()).collect();
            let mut next_layout = vec![0usize; n_super];
            for (s, slot) in slots.iter_mut().enumerate() {
                let d = step.move_after.dest_of(s);
                next[d] = std::mem::take(slot);
                next_layout[d] = lay[s];
            }
            slots = next;
            let _ = next_layout;
        }
        layout = prog.final_layout();
        total_rotations += rotations;
        sweeps = sweep + 1;
        if rotations == 0 && swaps == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SvdError::NoConvergence { sweeps, last_coupling: f64::NAN });
    }

    // collect columns back in label order
    let mut by_label: Vec<Option<ColPair>> = vec![None; n_pad];
    for (s, slot) in slots.into_iter().enumerate() {
        let label_block = layout[s];
        for (k, col) in slot.cols.into_iter().enumerate() {
            by_label[label_block * c + k] = Some(col);
        }
    }
    let cols: Vec<ColPair> =
        by_label.into_iter().map(|o| o.expect("layout is a permutation")).collect();

    // extraction (mirrors the unblocked driver)
    let norms: Vec<f64> = cols.iter().map(|(a, _)| treesvd_matrix::ops::norm2(a)).collect();
    let max_norm = norms.iter().fold(0.0_f64, |acc, &x| acc.max(x));
    let rank_tol = max_norm * n_pad as f64 * f64::EPSILON;
    let mut u = Matrix::zeros(m, n).map_err(|_| SvdError::EmptyMatrix)?;
    let mut sigma = vec![0.0; n];
    let mut zero_u = Vec::new();
    for j in 0..n {
        if norms[j] > rank_tol {
            sigma[j] = norms[j];
            let mut col = cols[j].0.clone();
            treesvd_matrix::ops::scal(1.0 / norms[j], &mut col);
            u.set_col(j, &col);
        } else {
            zero_u.push(j);
        }
    }
    let rank = n - zero_u.len();
    complete_orthonormal(&mut u, &zero_u);

    let v = if vectors {
        let mut v = Matrix::zeros(n, n).map_err(|_| SvdError::EmptyMatrix)?;
        let mut zero_v = Vec::new();
        for j in 0..n {
            let vj = &cols[j].1;
            let head_norm = treesvd_matrix::ops::norm2(&vj[..n]);
            if sigma[j] > 0.0 || head_norm > 0.5 {
                v.set_col(j, &vj[..n]);
            } else {
                zero_v.push(j);
            }
        }
        complete_orthonormal(&mut v, &zero_v);
        v
    } else {
        Matrix::identity(n, n).map_err(|_| SvdError::EmptyMatrix)?
    };

    Ok(BlockedRun { svd: Svd { u, sigma, v, rank }, sweeps, block_size: c, total_rotations })
}

/// One cyclic pass over all column pairs of the two resident blocks, in
/// label order (the lower-labelled block's columns first). Returns
/// (rotations, interchanges).
fn local_pass(
    slots: &mut [BlockSlot],
    s_lo: usize,
    s_hi: usize,
    threshold: f64,
    sort: bool,
) -> (usize, usize) {
    debug_assert_ne!(s_lo, s_hi);
    // take both blocks out to get clean disjoint access
    let mut lo = std::mem::take(&mut slots[s_lo]);
    let mut hi = std::mem::take(&mut slots[s_hi]);
    let c = lo.cols.len();
    let total = c + hi.cols.len();
    let mut rotations = 0usize;
    let mut swaps = 0usize;

    for i in 0..total {
        for j in (i + 1)..total {
            // borrow the two distinct union entries safely: both-in-lo,
            // both-in-hi, or one in each
            let (ci, cj): (&mut ColPair, &mut ColPair) = if j < c {
                let (a, b) = lo.cols.split_at_mut(j);
                (&mut a[i], &mut b[0])
            } else if i >= c {
                let (a, b) = hi.cols.split_at_mut(j - c);
                (&mut a[i - c], &mut b[0])
            } else {
                (&mut lo.cols[i], &mut hi.cols[j - c])
            };
            let out = orthogonalize_pair(&mut ci.0, &mut cj.0, threshold, sort);
            if !ci.1.is_empty() {
                use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped};
                if out.used_swap {
                    apply_rotation_swapped(out.rotation, &mut ci.1, &mut cj.1);
                } else {
                    apply_rotation(out.rotation, &mut ci.1, &mut cj.1);
                }
            }
            if !out.rotation.skipped {
                rotations += 1;
            }
            if out.used_swap {
                swaps += 1;
            }
        }
    }
    slots[s_lo] = lo;
    slots[s_hi] = hi;
    (rotations, swaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HestenesSvd, SvdOptions};
    use treesvd_matrix::{checks, generate};

    #[test]
    fn blocked_matches_unblocked_spectra() {
        let a = generate::random_uniform(40, 32, 1);
        let full = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        for procs in [2usize, 4, 8] {
            let run = blocked_svd(&a, &BlockedOptions::for_processors(procs)).unwrap();
            assert_eq!(run.block_size, 32 / (2 * procs));
            assert!(
                checks::spectrum_distance(&run.svd.sigma, &full.svd.sigma) < 1e-9,
                "P = {procs}"
            );
            assert!(run.svd.residual(&a) < 1e-10, "P = {procs}");
            assert!(run.svd.orthogonality() < 1e-10, "P = {procs}");
            assert!(checks::is_nonincreasing(&run.svd.sigma), "P = {procs}");
        }
    }

    #[test]
    fn blocked_handles_non_divisible_columns() {
        // 30 columns on 4 processors: c = ceil(30/8) = 4, padded to 32
        let a = generate::random_uniform(36, 30, 2);
        let run = blocked_svd(&a, &BlockedOptions::for_processors(4)).unwrap();
        assert_eq!(run.svd.sigma.len(), 30);
        assert!(run.svd.residual(&a) < 1e-10);
        assert!(run.svd.orthogonality() < 1e-10);
    }

    #[test]
    fn blocked_on_two_processors_known_spectrum() {
        let sigma: Vec<f64> = (1..=12).rev().map(|k| k as f64).collect();
        let a = generate::with_singular_values(20, &sigma, 3);
        let run = blocked_svd(&a, &BlockedOptions::for_processors(2)).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-9);
    }

    #[test]
    fn blocked_rank_deficient() {
        let a = generate::rank_deficient(24, 16, 10, 4);
        let run = blocked_svd(&a, &BlockedOptions::for_processors(4)).unwrap();
        assert_eq!(run.svd.rank, 10);
        assert!(run.svd.orthogonality() < 1e-10);
    }

    #[test]
    fn blocked_wide_input() {
        let at = generate::with_singular_values(20, &[5.0, 3.0, 1.0], 5);
        let a = at.transpose();
        let run = blocked_svd(&a, &BlockedOptions::for_processors(2)).unwrap();
        assert_eq!(run.svd.sigma.len(), 3);
        let recon =
            checks::reconstruction_residual(&a.transpose(), &run.svd.v, &run.svd.sigma, &run.svd.u);
        assert!(recon < 1e-10);
    }

    #[test]
    fn blocked_sweep_counts_reasonable() {
        // blocked sweeps do more work per step, so fewer sweeps than the
        // unblocked driver on the same matrix
        let a = generate::random_uniform(48, 32, 6);
        let full = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        let run = blocked_svd(&a, &BlockedOptions::for_processors(4)).unwrap();
        assert!(run.sweeps <= full.sweeps, "{} vs {}", run.sweeps, full.sweeps);
        assert!(run.total_rotations > 0);
    }

    #[test]
    fn blocked_with_ring_ordering() {
        let a = generate::random_uniform(30, 24, 7);
        let opts = BlockedOptions {
            processors: 3,
            svd: SvdOptions::default().with_ordering(crate::OrderingKind::NewRing),
        };
        let run = blocked_svd(&a, &opts).unwrap();
        assert!(run.svd.residual(&a) < 1e-10);
        assert_eq!(run.block_size, 4);
    }
}
