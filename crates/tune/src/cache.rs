//! The persistent decision cache: `(shape-class, P, topology, arch,
//! ANALYZER_VERSION) → TunePlan`.
//!
//! Shapes are bucketed by their binary orders of magnitude, so steady
//! traffic of same-class problems (the service regime of ROADMAP item 2)
//! plans exactly once; after that every tuning call is one read-locked
//! `HashMap` probe over a `Copy` key returning a `Copy` plan — no
//! allocation, no probe, no model evaluation. The analyzer version rides
//! in the key for the same reason it rides in
//! [`ProofCertificate`](treesvd_analyze::ProofCertificate): a plan chosen
//! under one generation of schedule proofs must not survive into the
//! next.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use treesvd_net::TopologyKind;

use crate::plan::{TunePlan, TuneProblem};

/// Log₂-bucketed problem shape: problems in the same bucket share a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// `⌊log₂ max(m,n)⌋` (normalized: rows ≥ cols).
    pub m_log2: u8,
    /// `⌊log₂ min(m,n)⌋`.
    pub n_log2: u8,
    /// Whether singular vectors are accumulated.
    pub vectors: bool,
}

impl ShapeClass {
    /// The bucket of an `m × n` problem.
    #[must_use]
    pub fn of(m: usize, n: usize, vectors: bool) -> Self {
        let lg = |x: usize| (usize::BITS - 1 - x.max(1).leading_zeros()) as u8;
        Self { m_log2: lg(m.max(n)), n_log2: lg(m.min(n).max(1)), vectors }
    }
}

/// The compiled target architecture (fixed per binary).
#[must_use]
pub fn target_arch() -> &'static str {
    std::env::consts::ARCH
}

/// The widest f64 SIMD tier this binary was compiled with (the same
/// ladder `bench::meta::simd_tier` records into the BENCH meta blocks).
#[must_use]
pub fn simd_tier() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512f"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "avx") {
        "avx"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else {
        "scalar"
    }
}

/// The full cache key. Every field is `Copy` (the strings are `'static`),
/// so key construction on the warm path never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Bucketed shape.
    pub shape: ShapeClass,
    /// Host-parallelism budget.
    pub processors: u16,
    /// Comm topology.
    pub topology: TopologyKind,
    /// Compile-target architecture.
    pub arch: &'static str,
    /// Compiled SIMD tier (the plan's kernel choices depend on it).
    pub simd: &'static str,
    /// Analyzer generation the plan's gate assumptions were made under.
    pub analyzer_version: u32,
}

impl TuneKey {
    /// The key a problem tunes under in this binary.
    #[must_use]
    pub fn of(problem: &TuneProblem) -> Self {
        Self {
            shape: ShapeClass::of(problem.m, problem.n, problem.vectors),
            processors: problem.processors.min(u16::MAX as usize) as u16,
            topology: problem.topology,
            arch: target_arch(),
            simd: simd_tier(),
            analyzer_version: treesvd_analyze::ANALYZER_VERSION,
        }
    }
}

/// Thread-safe decision cache with hit/miss counters (the counters are
/// how the smoke gate proves the warm path never re-plans).
#[derive(Debug, Default)]
pub struct TuneCache {
    map: RwLock<HashMap<TuneKey, TunePlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TuneCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a plan. A hit is one read-locked probe of a `Copy` key —
    /// allocation-free.
    pub fn get(&self, key: &TuneKey) -> Option<TunePlan> {
        let hit =
            self.map.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(key).copied();
        match hit {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize a plan.
    pub fn insert(&self, key: TuneKey, plan: TunePlan) {
        self.map.write().unwrap_or_else(std::sync::PoisonError::into_inner).insert(key, plan);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys planned.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized plans (tests / recalibration).
    pub fn clear(&self) {
        self.map.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// The process-wide decision cache every [`plan_for`](crate::plan_for)
/// call consults.
#[must_use]
pub fn global() -> &'static TuneCache {
    static CACHE: OnceLock<TuneCache> = OnceLock::new();
    CACHE.get_or_init(TuneCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DriverSel, KernelSel, TransportSel};
    use treesvd_orderings::OrderingKind;

    fn dummy_plan() -> TunePlan {
        TunePlan {
            driver: DriverSel::Simulated,
            ordering: OrderingKind::FatTree,
            kernel: KernelSel::Gram,
            block_cols: 1,
            threads: 4,
            transport: TransportSel::ZeroCopy,
            overlap: false,
            qr_frontend: true,
            qr_crossover: 8.0,
            hier_cols: 0,
            predicted_ns: 1.0,
        }
    }

    #[test]
    fn shape_class_buckets_by_log2() {
        assert_eq!(ShapeClass::of(1024, 32, true), ShapeClass::of(2000, 63, true));
        assert_ne!(ShapeClass::of(1024, 32, true), ShapeClass::of(1024, 64, true));
        assert_ne!(ShapeClass::of(1024, 32, true), ShapeClass::of(1024, 32, false));
        // normalized: wide and tall land in the same bucket
        assert_eq!(ShapeClass::of(32, 1024, true), ShapeClass::of(1024, 32, true));
        // degenerate sizes don't panic
        let _ = ShapeClass::of(0, 0, false);
    }

    #[test]
    fn same_class_problems_share_a_key() {
        let a = TuneKey::of(&TuneProblem::new(1024, 32).with_processors(8));
        let b = TuneKey::of(&TuneProblem::new(1500, 48).with_processors(8));
        assert_eq!(a, b);
        let c = TuneKey::of(&TuneProblem::new(1024, 32).with_processors(16));
        assert_ne!(a, c);
        assert_eq!(a.analyzer_version, treesvd_analyze::ANALYZER_VERSION);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = TuneCache::new();
        let key = TuneKey::of(&TuneProblem::new(256, 16));
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key, dummy_plan());
        assert_eq!(cache.get(&key).unwrap(), dummy_plan());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn arch_tags_are_nonempty() {
        assert!(!target_arch().is_empty());
        assert!(!simd_tier().is_empty());
    }
}
