//! Calibration of the cost model against the machine the process runs on.
//!
//! Constants come from three layers, each refining the last:
//!
//! 1. **Builtin** — conservative x86-class defaults compiled in, so the
//!    tuner is never without numbers.
//! 2. **Recorded** — the `"calibration"` object embedded in the committed
//!    `BENCH_distributed.json` meta block (see `bench::meta`): the
//!    constants measured on the recording machine. This is the only
//!    source for `overlap_step_ns`, which needs a full executor run to
//!    measure and cannot be microprobed.
//! 3. **Probed** — cheap one-shot online microprobes run on *this* host:
//!    a timed [`dot`](treesvd_matrix::ops::dot) burst (streaming flop
//!    rate), a timed [`gram_block`](treesvd_matrix::ops::gram_block)
//!    burst (panel flop rate), a timed buffer copy (link word rate), a
//!    timed [`BufferPool`](treesvd_comm::BufferPool) round-trip (message
//!    rate), and the sysfs L2 probe. The whole battery is sub-millisecond
//!    and runs **at most once per process** ([`std::sync::OnceLock`]);
//!    every warm path reads the memoized copy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use treesvd_comm::{loopback_channel, BufferPool};
use treesvd_matrix::ops::{dot, gram_block};
use treesvd_net::CostModel;

/// Where a [`Calibration`]'s constants came from (the strongest layer
/// that contributed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibSource {
    /// Compiled-in defaults only.
    Builtin,
    /// Builtin refined by the recorded bench meta block.
    Recorded,
    /// Recorded refined by this process's one-shot microprobes.
    Probed,
}

/// Calibrated machine constants, all in nanoseconds (and bytes for the
/// cache size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Time per streamed floating-point operation (long cache-missing
    /// column traversals — the Hestenes rotation regime).
    pub flop_ns: f64,
    /// Time per flop in cache-blocked panel kernels (Gram build, panel
    /// product) — the rate that makes the Gram kernel win.
    pub panel_flop_ns: f64,
    /// Time to move one 8-byte word over the in-process "link" (a payload
    /// copy, the legacy-transport unit cost).
    pub word_ns: f64,
    /// Fixed per-message cost: one pool lease + channel round-trip (the
    /// zero-copy transport's whole price).
    pub msg_ns: f64,
    /// Per-step bookkeeping of the overlapped distributed schedule
    /// (posted early receives, `try_recv` harvest, split A/V rotation).
    /// Measured at re-record time from the overlap-vs-zero-copy delta;
    /// not microprobable.
    pub overlap_step_ns: f64,
    /// L2 cache size in bytes (sysfs probe / `TREESVD_L2` / fallback).
    pub l2_bytes: usize,
    /// Provenance of the constants.
    pub source: CalibSource,
}

impl Calibration {
    /// Compiled-in defaults: x86-class server, ~4 GF/s streaming, ~10 GF/s
    /// panel, ~50 GB/s copy, ~0.3 µs per message, overlap bookkeeping in
    /// the microseconds (what `BENCH_distributed.json` measured).
    #[must_use]
    pub fn builtin() -> Self {
        Self {
            flop_ns: 0.25,
            panel_flop_ns: 0.10,
            word_ns: 0.16,
            msg_ns: 300.0,
            overlap_step_ns: 4000.0,
            l2_bytes: treesvd_matrix::cache::L2_FALLBACK_BYTES,
            source: CalibSource::Builtin,
        }
    }

    /// Builtin constants overridden by whatever the committed
    /// `BENCH_distributed.json` meta block recorded (absent keys keep the
    /// builtin value, so a pre-calibration recording still works).
    #[must_use]
    pub fn recorded() -> Self {
        let text =
            include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distributed.json"));
        Self::from_bench_meta(text)
    }

    /// Parse the `"calibration"` constants out of a recorded bench JSON
    /// (string-scanning, matching the hand-rolled writer in
    /// `bench::meta`). Missing keys fall back to [`Calibration::builtin`].
    #[must_use]
    pub fn from_bench_meta(text: &str) -> Self {
        let b = Self::builtin();
        let mut c = b;
        let mut seen = false;
        let mut take = |key: &str, slot: &mut f64| {
            if let Some(v) = json_number(text, key) {
                if v.is_finite() && v > 0.0 {
                    *slot = v;
                    seen = true;
                }
            }
        };
        take("word_ns", &mut c.word_ns);
        take("flop_ns", &mut c.flop_ns);
        take("panel_flop_ns", &mut c.panel_flop_ns);
        take("msg_ns", &mut c.msg_ns);
        take("overlap_step_ns", &mut c.overlap_step_ns);
        if let Some(v) = json_number(text, "l2_bytes") {
            if v.is_finite() && v >= 4096.0 {
                c.l2_bytes = v as usize;
                seen = true;
            }
        }
        c.source = if seen { CalibSource::Recorded } else { CalibSource::Builtin };
        c
    }

    /// The recorded constants refined by this process's microprobes.
    /// Prefer [`global`], which memoizes the result.
    #[must_use]
    pub fn probed() -> Self {
        let mut c = Self::recorded();
        c.flop_ns = probe_stream_flop_ns().unwrap_or(c.flop_ns);
        c.panel_flop_ns = probe_panel_flop_ns().unwrap_or(c.panel_flop_ns);
        c.word_ns = probe_word_ns().unwrap_or(c.word_ns);
        c.msg_ns = probe_msg_ns().unwrap_or(c.msg_ns);
        c.l2_bytes = treesvd_matrix::cache::l2_bytes();
        c.source = CalibSource::Probed;
        c
    }

    /// The [`CostModel`] these constants induce, in nanoseconds: `alpha` =
    /// per-message cost, `beta` = per-word link cost, `gamma`/`gamma_panel`
    /// = the two flop rates, `nu` = the overlap bookkeeping. The per-hop
    /// term is a share of the message cost (in-process "hops" are queue
    /// handoffs, not switches).
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            alpha: self.msg_ns,
            beta: self.word_ns,
            hop: self.msg_ns / 8.0,
            gamma: self.flop_ns,
            gamma_panel: self.panel_flop_ns,
            nu: self.overlap_step_ns,
        }
    }
}

/// The process-wide calibration: recorded constants refined by the
/// one-shot probe battery. First call pays the (sub-millisecond) probes;
/// every later call is a memoized copy — see [`probe_runs`].
#[must_use]
pub fn global() -> Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    *CAL.get_or_init(|| {
        PROBE_RUNS.fetch_add(1, Ordering::Relaxed);
        Calibration::probed()
    })
}

static PROBE_RUNS: AtomicU64 = AtomicU64::new(0);

/// How many times this process has run the probe battery (0 or 1 by
/// construction; the smoke gate asserts it never exceeds 1 across
/// repeated tuning calls).
#[must_use]
pub fn probe_runs() -> u64 {
    PROBE_RUNS.load(Ordering::Relaxed)
}

/// Scan `text` for `"key": <number>` and parse the number. Good enough
/// for the hand-written bench JSON this repo emits (no nested duplicate
/// keys inside the calibration object).
#[must_use]
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|ch: char| {
            !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '+' || ch == 'e' || ch == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median-of-samples timer: run `f` once to warm, then `samples` timed
/// repetitions, returning the median duration in ns (None when the clock
/// read zero — a broken/coarse clock must not poison the calibration).
fn timed_median_ns(samples: usize, mut f: impl FnMut()) -> Option<f64> {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let med = times[samples / 2];
    (med > 0.0).then_some(med)
}

/// Streaming flop rate: a burst of full-length `dot`s over vectors sized
/// well past L1 (256 KiB working set), ~0.1 ms total.
fn probe_stream_flop_ns() -> Option<f64> {
    let len = 16 * 1024;
    let x: Vec<f64> = (0..len).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();
    let y: Vec<f64> = (0..len).map(|i| 0.5 - (i % 5) as f64 * 0.0625).collect();
    let reps = 8;
    let ns = timed_median_ns(5, || {
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += dot(std::hint::black_box(&x), std::hint::black_box(&y));
        }
        std::hint::black_box(acc);
    })?;
    Some(ns / (2 * len * reps) as f64)
}

/// Panel flop rate: a burst of in-cache `gram_block` builds (m=256,
/// c=8 ⇒ a 16-column union, the blocked driver's sweet spot).
fn probe_panel_flop_ns() -> Option<f64> {
    let m = 256;
    let c = 8;
    let x: Vec<f64> = (0..m * c).map(|i| 1.0 + (i % 9) as f64 * 0.0625).collect();
    let y: Vec<f64> = (0..m * c).map(|i| 0.75 - (i % 11) as f64 * 0.03125).collect();
    let k = 2 * c;
    let mut g = vec![0.0; k * k];
    let reps = 4;
    let ns = timed_median_ns(5, || {
        for _ in 0..reps {
            gram_block(std::hint::black_box(&x), std::hint::black_box(&y), m, &mut g);
        }
        std::hint::black_box(&g);
    })?;
    Some(ns / (k * k * m * reps) as f64)
}

/// Link word rate: timed payload copies (the legacy transport's unit
/// cost; the zero-copy transport moves pointers instead).
fn probe_word_ns() -> Option<f64> {
    let words = 8 * 1024;
    let src = vec![1.5f64; words];
    let mut dst = vec![0.0f64; words];
    let reps = 16;
    let ns = timed_median_ns(5, || {
        for _ in 0..reps {
            dst.copy_from_slice(std::hint::black_box(&src));
            std::hint::black_box(&mut dst);
        }
    })?;
    Some(ns / (words * reps) as f64)
}

/// Per-message cost: a pool lease + one channel round-trip (the
/// transport's loopback hop), the zero-copy path's whole fixed price.
fn probe_msg_ns() -> Option<f64> {
    let mut pool = BufferPool::new();
    let (tx, rx) = loopback_channel();
    let reps = 64;
    let ns = timed_median_ns(5, || {
        for _ in 0..reps {
            let mut buf = pool.take(128);
            buf.extend_from_slice(&[1.0; 4]);
            tx.send(buf).unwrap();
            drop(rx.recv().unwrap());
        }
    })?;
    Some(ns / reps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_constants_are_ordered() {
        let c = Calibration::builtin();
        assert!(c.panel_flop_ns < c.flop_ns, "panel flops must be cheaper");
        assert!(c.msg_ns > c.word_ns);
        assert!(c.overlap_step_ns > c.msg_ns);
    }

    #[test]
    fn json_number_scans_hand_written_json() {
        let text =
            r#"{"meta": {"calibration": {"word_ns": 0.125, "flop_ns": 0.5, "l2_bytes": 1048576}}}"#;
        assert_eq!(json_number(text, "word_ns"), Some(0.125));
        assert_eq!(json_number(text, "flop_ns"), Some(0.5));
        assert_eq!(json_number(text, "l2_bytes"), Some(1048576.0));
        assert_eq!(json_number(text, "absent"), None);
    }

    #[test]
    fn from_bench_meta_falls_back_per_key() {
        let partial = r#"{"calibration": {"flop_ns": 0.5}}"#;
        let c = Calibration::from_bench_meta(partial);
        assert_eq!(c.flop_ns, 0.5);
        assert_eq!(c.word_ns, Calibration::builtin().word_ns, "absent key keeps builtin");
        assert_eq!(c.source, CalibSource::Recorded);
        let none = Calibration::from_bench_meta("{}");
        assert_eq!(none.source, CalibSource::Builtin);
    }

    #[test]
    fn garbage_values_are_rejected() {
        let bad = r#"{"calibration": {"flop_ns": -1.0, "word_ns": 0, "l2_bytes": 12}}"#;
        let c = Calibration::from_bench_meta(bad);
        let b = Calibration::builtin();
        assert_eq!(c.flop_ns, b.flop_ns);
        assert_eq!(c.word_ns, b.word_ns);
        assert_eq!(c.l2_bytes, b.l2_bytes);
    }

    #[test]
    fn probes_produce_positive_finite_rates() {
        let c = Calibration::probed();
        for v in [c.flop_ns, c.panel_flop_ns, c.word_ns, c.msg_ns, c.overlap_step_ns] {
            assert!(v.is_finite() && v > 0.0, "bad calibration constant: {v}");
        }
        assert!(c.l2_bytes >= 4096);
        assert_eq!(c.source, CalibSource::Probed);
    }

    #[test]
    fn global_is_memoized() {
        let a = global();
        let runs = probe_runs();
        assert!(runs <= 1);
        let b = global();
        assert_eq!(a, b);
        assert_eq!(probe_runs(), runs, "second read must not re-probe");
    }

    #[test]
    fn cost_model_mapping_keeps_the_ordering_invariants() {
        let m = Calibration::builtin().cost_model();
        assert!(m.gamma_panel < m.gamma);
        assert!(m.alpha > m.beta);
        assert!(m.nu > 0.0);
    }
}
