//! The decision procedure: score every candidate execution config with
//! the calibrated cost model and keep the cheapest.
//!
//! The model prices three driver families against the *effective* swept
//! shape (after deciding the QR front-end), in nanoseconds:
//!
//! * **blocked** — `2p` block columns of width `c`; each step runs `p`
//!   concurrent meetings priced by
//!   [`CostModel::gram_meeting_cost`]/[`pairwise_meeting_cost`]
//!   (per-phase compute terms), plus a fixed pool fork/join handshake.
//! * **distributed** — one rank per column pair; each step is one
//!   rotation plus the transport's fixed message cost, with the
//!   overlapped variant priced by [`CostModel::step_cost`] semantics
//!   (latency + max(compute, serialization) + ν).
//! * **simulated** — the central-router executor: the same rotations,
//!   chunked over the pool lanes with a per-step barrier and a routing
//!   term that grows with the padded width.
//!
//! Ordering selection reuses the data-free
//! [`analyze_program`](treesvd_sim::analyze_program) comm analysis (link
//! words from `phase_cost`) on the problem's topology, so the choice is
//! the paper's §5 analysis run under the calibrated constants rather
//! than a hard-coded table.

use treesvd_net::{CostModel, Topology, TopologyKind};
use treesvd_orderings::OrderingKind;
use treesvd_sim::{analyze_program, Machine};

use crate::calib::Calibration;
use crate::plan::{DriverSel, KernelSel, TransportSel, TunePlan, TuneProblem};

/// Thread-spawn cost charged per distributed rank (the executor spawns
/// fresh rank threads per run; the blocked/simulated pool is persistent).
const SPAWN_NS: f64 = 25_000.0;

/// Mild penalty on oversubscribed distributed ranks (context switching).
const OVERSUB_PENALTY: f64 = 1.25;

/// Safety floor on the modeled QR crossover: TSQR constant factors vary
/// more than the probe battery resolves, so the front-end only engages
/// where the modeled win is comfortable.
const MIN_CROSSOVER: f64 = 4.0;

/// Sentinel crossover when the model says the front-end never pays.
const NEVER_CROSSOVER: f64 = 1.0e9;

/// Empirical sweep-count estimate for one-sided Jacobi at width `n`
/// (quadratic convergence: grows like log₂ n; the recorded benches sit
/// at 7–9 sweeps for n ∈ 16..256).
fn est_sweeps(n: usize) -> f64 {
    let lg = (usize::BITS - n.max(2).leading_zeros()) as f64;
    (lg + 2.0).clamp(4.0, 12.0)
}

/// Per-pair rotation compute: the streamed A-rotation plus the V-row
/// update when vectors are accumulated.
fn pair_compute_ns(cm: &CostModel, me: usize, ne: usize, vectors: bool) -> f64 {
    cm.rotation_cost(me) + if vectors { cm.gamma * (8 * ne) as f64 } else { 0.0 }
}

/// One scored driver candidate.
#[derive(Debug, Clone, Copy)]
struct DriverScore {
    driver: DriverSel,
    kernel: KernelSel,
    block_cols: u16,
    threads: u16,
    overlap: bool,
    total_ns: f64,
}

/// Score the blocked driver at block-pair count `p`.
fn score_blocked(
    cm: &CostModel,
    cal: &Calibration,
    me: usize,
    ne: usize,
    vectors: bool,
    p: usize,
) -> DriverScore {
    let c = ne.div_ceil(2 * p).max(1);
    let n_super = 2 * p;
    let steps = (n_super - 1).max(1) as f64;
    let vrows = if vectors { ne } else { 0 };
    // A union panel (and the V panel riding with it) must stay
    // cache-resident for the Gram kernel's panel rate to hold; the
    // hierarchical level (always planned as Auto) restores residency for
    // oversized unions at a small strip-cycling overhead.
    let union_bytes = 8 * 2 * c * (me + vrows + 2 * c);
    let resident = union_bytes <= cal.l2_bytes;
    let (kernel, mut meeting) = if c >= 2 {
        (KernelSel::Gram, cm.gram_meeting_cost(c, me, vrows, true))
    } else {
        (KernelSel::Pairwise, cm.pairwise_meeting_cost(c, me, vrows))
    };
    if kernel == KernelSel::Gram && !resident {
        // hier strip cycling: extra pass over the union per strip level
        meeting *= 1.15;
    }
    // p meetings run concurrently on p pool lanes (candidates keep
    // p ≤ P), plus one fork/join handshake per step.
    let step = meeting + 2.0 * cm.alpha;
    DriverScore {
        driver: DriverSel::Blocked { processors: p.min(u16::MAX as usize) as u16 },
        kernel,
        block_cols: c.min(u16::MAX as usize) as u16,
        threads: p.min(u16::MAX as usize) as u16,
        overlap: false,
        total_ns: est_sweeps(ne) * steps * step,
    }
}

/// Score the thread-per-rank distributed executor (zero-copy transport;
/// the legacy copy-transport is priced inside the overlap decision and
/// never wins in-process).
fn score_distributed(
    cm: &CostModel,
    me: usize,
    ne_pad: usize,
    vectors: bool,
    p: usize,
) -> DriverScore {
    let ranks = (ne_pad / 2).max(1);
    let q = ranks.div_ceil(p.max(1)) as f64;
    let comp =
        pair_compute_ns(cm, me, ne_pad, vectors) * q * if q > 1.0 { OVERSUB_PENALTY } else { 1.0 };
    let overlap = overlap_decision(cm, me, ne_pad, vectors, TransportSel::ZeroCopy);
    let step = if overlap {
        cm.alpha + comp.max(zero_copy_serialization_ns(cm)) + cm.nu
    } else {
        comp + 2.0 * cm.alpha
    };
    let steps = (ne_pad - 1).max(1) as f64;
    DriverScore {
        driver: DriverSel::Distributed,
        kernel: KernelSel::Pairwise,
        block_cols: 1,
        threads: ranks.min(u16::MAX as usize) as u16,
        overlap,
        total_ns: est_sweeps(ne_pad) * steps * step + SPAWN_NS * ranks as f64,
    }
}

/// Score the central-router simulated executor.
fn score_simulated(
    cm: &CostModel,
    me: usize,
    ne_pad: usize,
    vectors: bool,
    p: usize,
) -> DriverScore {
    let pairs = (ne_pad / 2).max(1);
    let lanes = p.clamp(1, pairs);
    let chunks = pairs.div_ceil(lanes) as f64;
    let comp = pair_compute_ns(cm, me, ne_pad, vectors);
    // per-step: chunked rotations + pool fork/join + routing bookkeeping
    let step = chunks * comp + 2.0 * cm.alpha + 0.05 * cm.alpha * ne_pad as f64;
    let steps = (ne_pad - 1).max(1) as f64;
    DriverScore {
        driver: DriverSel::Simulated,
        kernel: KernelSel::Pairwise,
        block_cols: 1,
        threads: lanes.min(u16::MAX as usize) as u16,
        overlap: false,
        total_ns: est_sweeps(ne_pad) * steps * step,
    }
}

/// What one zero-copy message serializes onto the link: a pointer-sized
/// header, not the payload.
fn zero_copy_serialization_ns(cm: &CostModel) -> f64 {
    8.0 * cm.beta
}

/// Should the distributed executor run the overlapped schedule? Overlap
/// hides `min(compute, serialization)` per step and costs ν of
/// bookkeeping — it pays only when the hidden serialization beats ν.
/// Zero-copy messages serialize almost nothing (the payload moves by
/// pointer), which is exactly why overlap *loses* at the recorded small-P
/// points; a payload-copying transport with long columns flips the sign.
pub(crate) fn overlap_decision(
    cm: &CostModel,
    me: usize,
    ne_pad: usize,
    vectors: bool,
    transport: TransportSel,
) -> bool {
    let comp = pair_compute_ns(cm, me, ne_pad, vectors);
    let serialization = match transport {
        TransportSel::ZeroCopy => zero_copy_serialization_ns(cm),
        TransportSel::Legacy => {
            let words = me + if vectors { ne_pad } else { 0 };
            words as f64 * cm.beta
        }
    };
    comp.min(serialization) > cm.nu
}

/// Choose the ordering for a sweep unit of `n_eff` columns by replaying
/// each buildable ordering's sweep program through the data-free comm
/// analysis on the problem's topology (calibrated `phase_cost` +
/// `rotation_cost`). Falls back to the first buildable kind of the
/// paper's preference order when the unit is too large to analyze or the
/// leaf count is not a power of two (the `Topology` constructor's
/// requirement).
fn pick_ordering(topology: TopologyKind, n_eff: usize, words: u64, cm: &CostModel) -> OrderingKind {
    const PREFERENCE: [OrderingKind; 5] = [
        OrderingKind::FatTree,
        OrderingKind::NewRing,
        OrderingKind::ModifiedRing,
        OrderingKind::Ring,
        OrderingKind::RoundRobin,
    ];
    let fallback =
        PREFERENCE.into_iter().find(|k| k.build(n_eff).is_ok()).unwrap_or(OrderingKind::RoundRobin);
    let leaves = n_eff / 2;
    if !leaves.is_power_of_two() || leaves < 2 || n_eff > 256 {
        return fallback;
    }
    let machine = Machine::new(Topology::new(topology, leaves), *cm);
    let mut best: Option<(OrderingKind, f64)> = None;
    for kind in OrderingKind::ALL {
        let Ok(ord) = kind.build(n_eff) else { continue };
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let rep = analyze_program(&machine, &prog, words);
        let t = rep.total_time();
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((kind, t));
        }
    }
    best.map_or(fallback, |(k, _)| k)
}

/// The ordering for the blocked driver's super-column sweep: the first
/// buildable kind of the convergence preference order (rotation order is
/// all an in-process ordering changes).
fn blocked_ordering(n_super: usize) -> OrderingKind {
    [
        OrderingKind::FatTree,
        OrderingKind::NewRing,
        OrderingKind::ModifiedRing,
        OrderingKind::Ring,
        OrderingKind::RoundRobin,
    ]
    .into_iter()
    .find(|k| k.build(n_super).is_ok())
    .unwrap_or(OrderingKind::RoundRobin)
}

/// The model's QR-front-end aspect crossover for a width-`nn` problem:
/// the smallest `m/n` where factoring `A = QR` and sweeping `R` beats
/// sweeping `A` directly. Per sweep the direct path streams
/// `14·pairs·me` A-flops; the front-end replaces `me` by `nn` at a
/// one-time `(2 + 2·vectors)·me·nn²` panel-flop toll (QR + the
/// back-transform `U ← Q·U_R`), charged at 1.5× the panel rate for the
/// TSQR tree's reduction overhead.
fn qr_crossover_aspect(cm: &CostModel, nn: usize, vectors: bool) -> f64 {
    if nn < 2 {
        return NEVER_CROSSOVER;
    }
    let pairs = (nn * (nn - 1) / 2) as f64;
    let sweeps = est_sweeps(nn);
    // the direct path's per-row-unit sweep cost (the blocked Gram driver
    // streams panels, so the panel rate applies)
    let sweep_slope = sweeps * 14.0 * pairs * cm.gamma_panel;
    let toll_slope =
        (2.0 + if vectors { 2.0 } else { 0.0 }) * (nn * nn) as f64 * cm.gamma_panel * 1.5;
    let coeff = sweep_slope - toll_slope;
    if coeff <= 0.0 {
        return NEVER_CROSSOVER;
    }
    // break-even me: sweep_slope·(me − nn) = toll_slope·me
    let break_even_rows = sweep_slope * nn as f64 / coeff;
    (break_even_rows / nn as f64).max(MIN_CROSSOVER)
}

/// Run the full decision procedure (the cold path behind
/// [`plan_for`](crate::plan_for)).
#[must_use]
pub fn compute_plan(problem: &TuneProblem, cal: &Calibration) -> TunePlan {
    let cm = cal.cost_model();
    let (mm, nn) = problem.normalized_shape();
    let (mm, nn) = (mm.max(1), nn.max(1));
    let p = problem.processors.max(1);

    // 1) QR front-end: crossover from the model; engagement per actual
    //    aspect (the same `engages` rule the drivers apply).
    let crossover = qr_crossover_aspect(&cm, nn, problem.vectors);
    let engaged = mm > nn && (mm as f64) >= crossover * nn as f64;
    let (me, ne) = if engaged { (nn, nn) } else { (mm, nn) };
    let frontend_toll = if engaged {
        (2.0 + if problem.vectors { 2.0 } else { 0.0 })
            * (mm * nn * nn) as f64
            * cm.gamma_panel
            * 1.5
    } else {
        0.0
    };
    let ne_pad = ne + ne % 2;

    // 2) Driver family: every blocked block-pair count p' ≤ min(P, ne/2)
    //    (powers of two plus P itself), the distributed executor, and the
    //    simulated executor.
    let mut candidates: Vec<DriverScore> = Vec::new();
    let p_cap = p.min(ne / 2);
    let mut bp = 1;
    while bp <= p_cap {
        candidates.push(score_blocked(&cm, cal, me, ne, problem.vectors, bp));
        bp *= 2;
    }
    if p_cap >= 1 && !p_cap.is_power_of_two() {
        candidates.push(score_blocked(&cm, cal, me, ne, problem.vectors, p_cap));
    }
    if ne_pad >= 2 {
        candidates.push(score_distributed(&cm, me, ne_pad, problem.vectors, p));
        candidates.push(score_simulated(&cm, me, ne_pad, problem.vectors, p));
    }
    let best = candidates
        .into_iter()
        .min_by(|a, b| a.total_ns.total_cmp(&b.total_ns))
        .unwrap_or_else(|| score_simulated(&cm, me, ne_pad.max(2), problem.vectors, p));

    // 3) Ordering for the winner's sweep unit. The blocked driver's
    //    meetings are in-process pool handoffs — no link ever carries the
    //    panels, so the ordering's only observable effect is rotation
    //    order, i.e. convergence; keep the default tree ordering there
    //    (measured best sweep counts: the comm-minimal llb pick costs an
    //    extra sweep on the recorded blocked shapes). The simulated and
    //    distributed executors do pay per-message costs, so their
    //    ordering comes from the comm analysis.
    let ordering = match best.driver {
        DriverSel::Blocked { processors } => blocked_ordering(2 * processors as usize),
        _ => pick_ordering(problem.topology, ne_pad, (me as u64).max(1), &cm),
    };

    // The candidate's thread count follows the stated budget `P` (it is
    // the machine the model priced), but the *pool request* must never
    // oversubscribe the physical host: extra workers on a saturated core
    // only buy context switches. Measured on a 1-core host: an
    // oversubscribed 4-lane pool cost ~8% against the same config at the
    // host's own lane count.
    let host = treesvd_sim::par::num_threads().clamp(1, u16::MAX as usize) as u16;

    TunePlan {
        driver: best.driver,
        ordering,
        kernel: best.kernel,
        block_cols: best.block_cols,
        threads: best.threads.min(host).max(1),
        transport: TransportSel::ZeroCopy,
        overlap: best.overlap,
        qr_frontend: true,
        qr_crossover: crossover,
        hier_cols: 0,
        predicted_ns: best.total_ns + frontend_toll,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::builtin()
    }

    #[test]
    fn sweeps_estimate_is_monotone_and_clamped() {
        assert!(est_sweeps(16) <= est_sweeps(64));
        assert!(est_sweeps(2) >= 4.0);
        assert!(est_sweeps(1 << 20) <= 12.0);
    }

    #[test]
    fn zero_copy_overlap_is_off_at_small_p() {
        // the recorded regression: new-ring P=8, m=4096 — overlap lost to
        // plain zero-copy, so the calibrated model must turn it off
        let cm = cal().cost_model();
        assert!(!overlap_decision(&cm, 4096, 16, true, TransportSel::ZeroCopy));
        assert!(!overlap_decision(&cm, 4096, 32, true, TransportSel::ZeroCopy));
    }

    #[test]
    fn copying_transport_with_long_columns_flips_overlap_on() {
        let cm = cal().cost_model();
        assert!(overlap_decision(&cm, 1 << 20, 64, true, TransportSel::Legacy));
        assert!(!overlap_decision(&cm, 256, 64, true, TransportSel::Legacy));
    }

    #[test]
    fn square_shapes_prefer_the_blocked_gram_driver() {
        let plan = compute_plan(&TuneProblem::new(1024, 128).with_processors(4), &cal());
        assert!(matches!(plan.driver, DriverSel::Blocked { .. }), "{plan:?}");
        assert_eq!(plan.kernel, KernelSel::Gram);
        assert!(plan.block_cols >= 2);
        assert_eq!(plan.transport, TransportSel::ZeroCopy);
        assert!(plan.predicted_ns > 0.0);
    }

    #[test]
    fn tall_shapes_engage_the_frontend() {
        let tall = TuneProblem::new(1 << 15, 64).with_processors(4);
        let plan = compute_plan(&tall, &cal());
        assert!(plan.qr_frontend);
        assert!(
            (tall.m as f64) >= plan.qr_crossover * tall.n as f64,
            "aspect 512 must clear the modeled crossover {}",
            plan.qr_crossover
        );
        // and the crossover respects the safety floor
        assert!(plan.qr_crossover >= MIN_CROSSOVER);
    }

    #[test]
    fn wide_inputs_normalize_to_the_transpose() {
        let a = compute_plan(&TuneProblem::new(64, 1 << 15).with_processors(4), &cal());
        let b = compute_plan(&TuneProblem::new(1 << 15, 64).with_processors(4), &cal());
        assert_eq!(a, b);
    }

    #[test]
    fn plans_are_deterministic() {
        let p = TuneProblem::new(2000, 100).with_processors(8);
        assert_eq!(compute_plan(&p, &cal()), compute_plan(&p, &cal()));
    }

    #[test]
    fn ordering_comes_from_the_comm_analysis() {
        // On a perfect fat tree a localized tree-family ordering must win
        // the analysis for a pow2 sweep unit (the llb variant localizes
        // hardest and takes it at every measured size; ring/round-robin
        // traffic hits the root every step and must lose).
        let cm = cal().cost_model();
        let kind = pick_ordering(TopologyKind::PerfectFatTree, 16, 1024, &cm);
        assert!(
            matches!(kind, OrderingKind::Llb | OrderingKind::FatTree | OrderingKind::Hybrid),
            "{kind:?}"
        );
        // unanalyzable sizes fall back to a buildable kind
        let kind = pick_ordering(TopologyKind::PerfectFatTree, 6, 1024, &cm);
        assert!(kind.build(6).is_ok());
    }

    #[test]
    fn blocked_plans_keep_the_convergence_proven_tree_ordering() {
        let plan = compute_plan(&TuneProblem::new(256, 64).with_processors(4), &cal());
        assert!(matches!(plan.driver, DriverSel::Blocked { .. }), "{plan:?}");
        assert_eq!(plan.ordering, OrderingKind::FatTree);
    }

    #[test]
    fn thread_requests_never_oversubscribe_the_host() {
        let host = treesvd_sim::par::num_threads().max(1);
        for (m, n, p) in [(256, 64, 4), (4096, 16, 8), (1024, 128, 32)] {
            let plan = compute_plan(&TuneProblem::new(m, n).with_processors(p), &cal());
            assert!((plan.threads as usize) <= host, "{plan:?} vs host {host}");
            assert!(plan.threads >= 1);
        }
    }

    #[test]
    fn tiny_block_widths_fall_back_to_pairwise() {
        // ne/2P = 1 ⇒ c = 1: the Gram kernel's panel machinery has
        // nothing to amortize, the plan must keep the streaming kernel
        let plan = compute_plan(&TuneProblem::new(4096, 8).with_processors(4), &cal());
        if let DriverSel::Blocked { .. } = plan.driver {
            if plan.block_cols == 1 {
                assert_eq!(plan.kernel, KernelSel::Pairwise);
            }
        }
    }
}
