//! `treesvd-tune`: cost-model-driven auto-tuning.
//!
//! Given a problem statement `(m, n, vectors, P, topology)` — plus the
//! compile-time architecture — select the full execution config: driver
//! (simulated / blocked / distributed), Jacobi ordering, block kernel,
//! block width `c`, thread count, transport, comm/compute overlap, QR
//! front-end crossover, and hierarchical-blocking width. Selection
//! minimizes the calibrated [`treesvd_net::CostModel`] extended with
//! per-phase compute terms; see [`model`] for the procedure and
//! [`calib`] for where the constants come from (recorded bench meta
//! blocks refined by one-shot microprobes).
//!
//! Decisions are memoized in a process-wide [`cache::TuneCache`] keyed
//! by `(shape-class, P, topology, arch, ANALYZER_VERSION)`: steady-state
//! traffic pays zero tuning overhead, and the warm path —
//! [`plan_for`] on a cached key — performs no heap allocation and never
//! re-runs a probe ([`calib::probe_runs`] stays put).
//!
//! This crate sits *below* `treesvd-core`: core's `SvdOptions::auto()`
//! maps a [`TunePlan`] onto its options, and the distributed driver
//! consults [`advise_overlap`] when the caller did not pin overlap.
//! Plans are *requests*, not bypasses — every choice still flows through
//! the analyzer gates (overlap engages only when
//! `verify_overlap_freedom` proves the plan deadlock-free, schedules
//! still verify, certificates still validate).

pub mod cache;
pub mod calib;
pub mod model;
pub mod plan;

pub use cache::{ShapeClass, TuneCache, TuneKey};
pub use calib::{CalibSource, Calibration};
pub use model::compute_plan;
pub use plan::{DriverSel, KernelSel, TransportSel, TunePlan, TuneProblem};

use treesvd_net::TopologyKind;

/// Plan the execution of `problem`, consulting (and filling) the
/// process-wide decision cache. First call per shape-class runs the
/// calibration probes (once per process) and the full model; every later
/// call with the same key is one allocation-free cache probe.
#[must_use]
pub fn plan_for(problem: &TuneProblem) -> TunePlan {
    let key = TuneKey::of(problem);
    if let Some(plan) = cache::global().get(&key) {
        return plan;
    }
    let cal = calib::global();
    let plan = model::compute_plan(problem, &cal);
    cache::global().insert(key, plan);
    plan
}

/// Should a distributed run over the zero-copy transport use the
/// overlapped schedule? The calibrated model's answer for columns of
/// length `m` at padded width `n_pad` — `false` at the recorded small-P
/// points, where zero-copy leaves overlap nothing to hide. This is what
/// the distributed driver consults when no explicit `with_overlap` was
/// set; the executor still gates the overlapped schedule behind the
/// analyzer's deadlock-freedom proof.
#[must_use]
pub fn advise_overlap(m: usize, n_pad: usize, vectors: bool, _topology: TopologyKind) -> bool {
    let cm = calib::global().cost_model();
    model::overlap_decision(&cm, m, n_pad, vectors, TransportSel::ZeroCopy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_path_hits_the_cache_without_reprobing() {
        let problem = TuneProblem::new(777, 33).with_processors(3);
        let cold = plan_for(&problem);
        let hits_before = cache::global().hits();
        let probes_before = calib::probe_runs();
        let warm = plan_for(&problem);
        assert_eq!(cold, warm, "cached plan must be bit-identical");
        assert!(cache::global().hits() > hits_before, "second call must hit the cache");
        assert_eq!(calib::probe_runs(), probes_before, "no probe re-runs");
        assert!(probes_before <= 1, "probe battery runs at most once per process");
    }

    #[test]
    fn same_class_shapes_share_one_plan() {
        let a = plan_for(&TuneProblem::new(1025, 40).with_processors(5));
        let b = plan_for(&TuneProblem::new(1999, 60).with_processors(5));
        assert_eq!(a, b);
    }

    #[test]
    fn advise_overlap_matches_the_recorded_regression() {
        // BENCH_distributed: new-ring P=8 (n=16) and P=16 (n=32) at
        // m=4096 — zero-copy beat overlap at every point
        assert!(!advise_overlap(4096, 16, true, TopologyKind::PerfectFatTree));
        assert!(!advise_overlap(4096, 32, true, TopologyKind::PerfectFatTree));
    }
}
