//! The tuner's input (a problem statement) and output (a full execution
//! config).
//!
//! `treesvd-tune` sits *below* `treesvd-core` in the crate graph (core's
//! `SvdOptions::auto()` consumes these plans), so the driver/kernel
//! selections are small mirror enums here rather than core's own types;
//! core maps them one-to-one.

use treesvd_net::TopologyKind;
use treesvd_orderings::OrderingKind;

/// The problem statement the tuner plans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneProblem {
    /// Row count of the input (pre-transpose; wide inputs are normalized
    /// internally, matching what the drivers do).
    pub m: usize,
    /// Column count of the input.
    pub n: usize,
    /// Whether singular vectors will be accumulated.
    pub vectors: bool,
    /// Host-parallelism budget: the number of worker threads the plan may
    /// assume (the `P` of the paper's `P`-processor machine).
    pub processors: usize,
    /// The tree topology the comm phases are priced on.
    pub topology: TopologyKind,
}

impl TuneProblem {
    /// A problem with the production defaults: vectors on, `P` from
    /// [`treesvd_sim::par::num_threads`] (honoring `TREESVD_THREADS`),
    /// perfect fat-tree topology.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        Self {
            m,
            n,
            vectors: true,
            processors: treesvd_sim::par::num_threads().max(1),
            topology: TopologyKind::PerfectFatTree,
        }
    }

    /// Set whether singular vectors are needed.
    #[must_use]
    pub fn with_vectors(mut self, vectors: bool) -> Self {
        self.vectors = vectors;
        self
    }

    /// Set the host-parallelism budget.
    #[must_use]
    pub fn with_processors(mut self, processors: usize) -> Self {
        self.processors = processors.max(1);
        self
    }

    /// Set the topology.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// The shape the drivers actually sweep: wide inputs run on the
    /// transpose, so rows ≥ cols.
    #[must_use]
    pub fn normalized_shape(&self) -> (usize, usize) {
        (self.m.max(self.n), self.m.min(self.n))
    }
}

/// Which driver executes the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverSel {
    /// The step-simulated Hestenes driver (`HestenesSvd::compute`): the
    /// central router walks the schedule, rotations fork on the
    /// persistent pool.
    Simulated,
    /// The blocked (Schreiber) driver with this many block pairs: `2p`
    /// block columns of width `c = n / 2p` meet pairwise.
    Blocked {
        /// Block-pair count (the blocked driver's `processors` argument).
        processors: u16,
    },
    /// The thread-per-rank distributed executor over `treesvd-comm`.
    Distributed,
}

impl DriverSel {
    /// Human-readable driver name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriverSel::Simulated => "simulated",
            DriverSel::Blocked { .. } => "blocked",
            DriverSel::Distributed => "distributed",
        }
    }
}

/// Which meeting kernel the blocked driver uses (mirror of core's
/// `BlockKernel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelSel {
    /// Stream every column pair through a full-length Hestenes rotation.
    Pairwise,
    /// Gram/panel block kernel (in-cache Jacobi + one panel product).
    Gram,
}

/// Which transport the distributed executor uses (mirror of sim's
/// `Transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportSel {
    /// Payload-copying legacy transport.
    Legacy,
    /// Pool-leased zero-copy transport.
    ZeroCopy,
}

/// A full execution config, as selected by the tuner. `Copy` throughout:
/// a warm cache hit hands one out without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePlan {
    /// Driver (and for the blocked driver, the block-pair count).
    pub driver: DriverSel,
    /// Jacobi ordering for the driver's sweep unit (block columns for the
    /// blocked driver, padded data columns otherwise).
    pub ordering: OrderingKind,
    /// Blocked-meeting kernel.
    pub kernel: KernelSel,
    /// The block width `c` the plan was priced at (informative; the
    /// blocked driver re-derives it from the actual `n` at run time).
    pub block_cols: u16,
    /// Worker-thread budget the plan prices.
    pub threads: u16,
    /// Distributed transport.
    pub transport: TransportSel,
    /// Comm/compute overlap in the distributed executor. Only a *request*:
    /// the executor still engages it solely when the analyzer proves the
    /// overlapped plan deadlock-free (`verify_overlap_freedom`).
    pub overlap: bool,
    /// Always enable the QR front-end gate; engagement is per-shape via
    /// `qr_crossover`.
    pub qr_frontend: bool,
    /// Model-derived aspect-ratio crossover: the front-end engages when
    /// `m ≥ qr_crossover · n`.
    pub qr_crossover: f64,
    /// Hierarchical-blocking width; `0` = probe-driven `Auto`.
    pub hier_cols: u32,
    /// The model's predicted wall time (ns) for the planned config —
    /// transparency, not a promise.
    pub predicted_ns: f64,
}
