//! Principal component analysis via the tree-machine SVD.
//!
//! Samples are rows of the data matrix; components are the right singular
//! vectors of the centered data, and explained variances are `σ²/(m−1)` —
//! all falling out of one sorted SVD.
//!
//! For tall data with few features (`d ≤ SMALL_ORDER_MAX ≤ m`) the model
//! is fit through the **small-Gram path**: the `d × d` Gram matrix
//! `G = CᵀC` has eigendecomposition `G = V Σ² Vᵀ`, so its SVD on the
//! batched SoA engine yields the components (`V`) and the explained
//! variances (`σ_G/(m−1)`, since `σ_G = σ²`) without running the
//! tree-machine driver over all `m` rows.

use crate::{batch_to_svd_error, SMALL_ORDER_MAX};
use treesvd_batch::{batch_svd, BatchOptions, BatchSoA};
use treesvd_core::{HestenesSvd, Matrix, SvdError, SvdOptions};

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before the SVD.
    pub mean: Vec<f64>,
    /// Principal axes (columns, sorted by decreasing variance), `d × k`.
    pub components: Matrix,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance per component (sums to 1 for full rank).
    pub explained_ratio: Vec<f64>,
}

impl Pca {
    /// Project a sample (length-`d` row) onto the first `k` components.
    ///
    /// # Panics
    /// Panics if the sample length disagrees or `k` exceeds the components.
    pub fn transform(&self, sample: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(sample.len(), self.mean.len(), "feature count mismatch");
        assert!(k <= self.components.cols(), "k exceeds component count");
        let centered: Vec<f64> = sample.iter().zip(self.mean.iter()).map(|(x, m)| x - m).collect();
        (0..k).map(|t| treesvd_matrix::ops::dot(&centered, self.components.col(t))).collect()
    }

    /// Reconstruct a sample from its first-`k` projection.
    ///
    /// # Panics
    /// Panics if `scores.len()` exceeds the component count.
    pub fn inverse_transform(&self, scores: &[f64]) -> Vec<f64> {
        assert!(scores.len() <= self.components.cols());
        let mut out = self.mean.clone();
        for (t, &s) in scores.iter().enumerate() {
            treesvd_matrix::ops::axpy(s, self.components.col(t), &mut out);
        }
        out
    }
}

/// Fit PCA to `data` (`m` samples × `d` features, samples as rows).
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if there are fewer than two samples.
pub fn pca(data: &Matrix) -> Result<Pca, SvdError> {
    let (m, d) = data.shape();
    assert!(m >= 2, "need at least two samples");

    // center
    let mut mean = vec![0.0; d];
    for (j, mj) in mean.iter_mut().enumerate() {
        *mj = data.col(j).iter().sum::<f64>() / m as f64;
    }
    let centered = Matrix::from_fn(m, d, |i, j| data.get(i, j) - mean[j])
        .map_err(|_| SvdError::EmptyMatrix)?;

    let denom = (m - 1) as f64;
    let (explained_variance, components) = if d <= SMALL_ORDER_MAX && m >= d {
        // small-Gram path: G = CᵀC is d × d and its singular values are
        // exactly σ², so one batched-engine solve replaces a full driver
        // run over all m rows. V stays orthonormal even at reduced rank
        // (the engine completes rank-deficient factors).
        let gram = centered.transpose().matmul(&centered).map_err(|_| SvdError::EmptyMatrix)?;
        let mut batch = BatchSoA::from_matrices(std::slice::from_ref(&gram), treesvd_batch::LANES)
            .map_err(batch_to_svd_error)?;
        let out = batch_svd(&mut batch, &BatchOptions::default()).map_err(batch_to_svd_error)?;
        let variances: Vec<f64> = out.sigma(0).iter().map(|s2| s2 / denom).collect();
        let components = out.v_problem(0).expect("vector accumulation is on by default");
        (variances, components)
    } else {
        let run = HestenesSvd::new(SvdOptions::default()).compute(&centered)?;
        let svd = run.svd;
        let variances: Vec<f64> = svd.sigma.iter().map(|s| s * s / denom).collect();
        // components = right singular vectors of the centered data. For a
        // wide (d > m) input the driver transposes internally and swaps
        // factors, so the feature-space directions are whichever factor
        // has d rows.
        let components = if svd.v.rows() == d { svd.v } else { svd.u };
        (variances, components)
    };
    let k = explained_variance.len();
    let total: f64 = explained_variance.iter().sum();
    let explained_ratio: Vec<f64> = if total > 0.0 {
        explained_variance.iter().map(|v| v / total).collect()
    } else {
        vec![0.0; k]
    };
    Ok(Pca { mean, components, explained_variance, explained_ratio })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    /// Synthetic data concentrated along known directions.
    fn line_data(m: usize, d: usize, seed: u64) -> Matrix {
        // samples = t * e0_direction + small noise
        let noise = generate::random_uniform(m, d, seed);
        Matrix::from_fn(m, d, |i, j| {
            let t = i as f64 - m as f64 / 2.0;
            let principal = if j == 0 { t } else { 0.0 };
            principal + 0.01 * noise.get(i, j)
        })
        .unwrap()
    }

    #[test]
    fn dominant_direction_found() {
        let data = line_data(40, 5, 1);
        let model = pca(&data).unwrap();
        // first component is ±e0
        let c0 = model.components.col(0);
        assert!(c0[0].abs() > 0.999, "c0 = {c0:?}");
        assert!(model.explained_ratio[0] > 0.99);
    }

    #[test]
    fn ratios_sum_to_one() {
        let data = generate::random_uniform(30, 6, 2);
        let model = pca(&data).unwrap();
        let sum: f64 = model.explained_ratio.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // variances sorted descending
        assert!(treesvd_matrix::checks::is_nonincreasing(&model.explained_variance));
    }

    #[test]
    fn transform_round_trip_full_rank() {
        let data = generate::random_uniform(20, 4, 3);
        let model = pca(&data).unwrap();
        let sample: Vec<f64> = (0..4).map(|j| data.get(7, j)).collect();
        let scores = model.transform(&sample, 4);
        let back = model.inverse_transform(&scores);
        for (x, y) in sample.iter().zip(back.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn truncated_reconstruction_loses_little_on_low_rank_data() {
        let data = line_data(50, 8, 4);
        let model = pca(&data).unwrap();
        let sample: Vec<f64> = (0..8).map(|j| data.get(10, j)).collect();
        let scores = model.transform(&sample, 1);
        let back = model.inverse_transform(&scores);
        let err: f64 =
            sample.iter().zip(back.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let scale = treesvd_matrix::ops::norm2(&sample).max(1.0);
        assert!(err / scale < 0.05, "relative err {}", err / scale);
    }

    #[test]
    fn gram_path_agrees_with_the_driver() {
        // d = 7 ≤ SMALL_ORDER_MAX takes the Gram path; re-derive the
        // model through the tree-machine driver and compare
        let data = generate::random_uniform(35, 7, 6);
        let model = pca(&data).unwrap();

        let (m, d) = data.shape();
        let mut mean = vec![0.0; d];
        for (j, mj) in mean.iter_mut().enumerate() {
            *mj = data.col(j).iter().sum::<f64>() / m as f64;
        }
        let centered = Matrix::from_fn(m, d, |i, j| data.get(i, j) - mean[j]).unwrap();
        let run = HestenesSvd::new(SvdOptions::default()).compute(&centered).unwrap();

        for (t, s) in run.svd.sigma.iter().enumerate() {
            let reference = s * s / (m - 1) as f64;
            let got = model.explained_variance[t];
            assert!(
                (got - reference).abs() <= 1e-9 * reference.max(1.0),
                "variance {t}: {got} vs {reference}"
            );
        }
        // components agree up to per-column sign
        for t in 0..d {
            let dot = treesvd_matrix::ops::dot(model.components.col(t), run.svd.v.col(t));
            assert!(dot.abs() > 1.0 - 1e-7, "component {t}: |dot| = {}", dot.abs());
        }
        assert!(treesvd_matrix::checks::orthogonality_residual(&model.components) < 1e-12);
    }

    #[test]
    fn gram_path_handles_rank_deficient_data() {
        // two informative directions, the rest exactly dependent
        let data = Matrix::from_fn(24, 6, |i, j| {
            let t = i as f64 - 12.0;
            let u = ((i * 7 + 3) % 11) as f64 - 5.0;
            match j {
                0 => t,
                1 => u,
                _ => t + 2.0 * u, // linear combination of cols 0 and 1
            }
        })
        .unwrap();
        let model = pca(&data).unwrap();
        // only two nonzero variances, components still orthonormal
        assert!(model.explained_variance[2] < 1e-18 * model.explained_variance[0]);
        assert!(treesvd_matrix::checks::orthogonality_residual(&model.components) < 1e-12);
        let ratio_sum: f64 = model.explained_ratio.iter().sum();
        assert!((ratio_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_data_more_features_than_samples() {
        let data = generate::random_uniform(5, 12, 5);
        let model = pca(&data).unwrap();
        assert_eq!(model.components.rows(), 12);
        assert_eq!(model.mean.len(), 12);
        let sample: Vec<f64> = (0..12).map(|j| data.get(2, j)).collect();
        let k = model.components.cols();
        let scores = model.transform(&sample, k);
        assert_eq!(scores.len(), k);
    }
}
