//! Rank-revealing least squares and pseudoinverses via the tree-machine
//! SVD.

use treesvd_core::{HestenesSvd, Matrix, SvdError, SvdOptions};

/// Result of a least-squares solve `min ‖Ax − b‖₂`.
#[derive(Debug, Clone)]
pub struct LstsqResult {
    /// The minimum-norm solution.
    pub x: Vec<f64>,
    /// The residual norm `‖Ax − b‖₂`.
    pub residual_norm: f64,
    /// Effective rank used (singular values below `rcond · σ₁` dropped).
    pub effective_rank: usize,
    /// The singular values of `A`.
    pub sigma: Vec<f64>,
}

/// Solve `min ‖Ax − b‖₂` by the SVD, dropping singular values below
/// `rcond · σ₁` (pass `None` for the default `max(m,n) · ε`).
///
/// Returns the **minimum-norm** solution for rank-deficient problems —
/// exactly the "small singular values regarded as zero" regime the paper's
/// intro mentions.
///
/// # Errors
/// Propagates solver errors; shape mismatches return
/// [`SvdError::EmptyMatrix`]-adjacent panics earlier.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn lstsq(a: &Matrix, b: &[f64], rcond: Option<f64>) -> Result<LstsqResult, SvdError> {
    assert_eq!(b.len(), a.rows(), "rhs length must equal row count");
    let run = HestenesSvd::new(SvdOptions::default()).compute(a)?;
    let svd = run.svd;
    let (m, n) = a.shape();
    let rcond = rcond.unwrap_or(m.max(n) as f64 * f64::EPSILON);
    let cutoff = rcond * svd.sigma.first().copied().unwrap_or(0.0);

    // x = V Σ⁺ Uᵀ b ; for a wide input the driver already swapped factors,
    // so handle both orientations through the returned shapes:
    // svd.u: m x k, svd.v: n x k with k = min(m, n) in the tall case.
    let k = svd.sigma.len();
    let mut x = vec![0.0; n];
    let mut rank = 0usize;
    for t in 0..k {
        let s = svd.sigma[t];
        if s <= cutoff || s == 0.0 {
            continue;
        }
        rank += 1;
        let ut = svd.u.col(t);
        let coeff = treesvd_matrix::ops::dot(ut, b) / s;
        let vt = svd.v.col(t);
        for (xi, &vi) in x.iter_mut().zip(vt.iter()) {
            *xi += coeff * vi;
        }
    }

    // residual
    let mut r = b.to_vec();
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            treesvd_matrix::ops::axpy(-xj, a.col(j), &mut r);
        }
    }
    Ok(LstsqResult {
        x,
        residual_norm: treesvd_matrix::ops::norm2(&r),
        effective_rank: rank,
        sigma: svd.sigma,
    })
}

/// The Moore–Penrose pseudoinverse `A⁺ = V Σ⁺ Uᵀ` with the same `rcond`
/// truncation rule as [`lstsq`].
///
/// # Errors
/// Propagates solver errors.
pub fn pseudoinverse(a: &Matrix, rcond: Option<f64>) -> Result<Matrix, SvdError> {
    let run = HestenesSvd::new(SvdOptions::default()).compute(a)?;
    let svd = run.svd;
    let (m, n) = a.shape();
    let rcond = rcond.unwrap_or(m.max(n) as f64 * f64::EPSILON);
    let cutoff = rcond * svd.sigma.first().copied().unwrap_or(0.0);

    let mut pinv = Matrix::zeros(n, m).map_err(|_| SvdError::EmptyMatrix)?;
    for t in 0..svd.sigma.len() {
        let s = svd.sigma[t];
        if s <= cutoff || s == 0.0 {
            continue;
        }
        let vt = svd.v.col(t).to_vec();
        let ut = svd.u.col(t).to_vec();
        // pinv += (1/s) * v_t * u_tᵀ, column by column of pinv (n x m)
        for (j, &uj) in ut.iter().enumerate() {
            let w = uj / s;
            if w != 0.0 {
                let col = pinv.col_mut(j);
                for (c, &vi) in col.iter_mut().zip(vt.iter()) {
                    *c += w * vi;
                }
            }
        }
    }
    Ok(pinv)
}

/// Ridge (Tikhonov-regularized) least squares:
/// `x = V · diag(σ/(σ² + λ²)) · Uᵀ b` — the standard SVD filter form of
/// `min ‖Ax − b‖² + λ²‖x‖²`.
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if `b.len() != a.rows()` or `lambda < 0`.
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, SvdError> {
    assert_eq!(b.len(), a.rows(), "rhs length must equal row count");
    assert!(lambda >= 0.0, "lambda must be nonnegative");
    let run = HestenesSvd::new(SvdOptions::default()).compute(a)?;
    let svd = run.svd;
    let n = a.cols();
    let mut x = vec![0.0; n];
    for t in 0..svd.sigma.len() {
        let s = svd.sigma[t];
        if s == 0.0 {
            continue;
        }
        let filter = s / (s * s + lambda * lambda);
        let coeff = treesvd_matrix::ops::dot(svd.u.col(t), b) * filter;
        for (xi, &vi) in x.iter_mut().zip(svd.v.col(t).iter()) {
            *xi += coeff * vi;
        }
    }
    Ok(x)
}

/// The 2-norm condition number `σ₁ / σ_min` (infinite for singular
/// matrices).
///
/// # Errors
/// Propagates solver errors.
pub fn condition_number(a: &Matrix) -> Result<f64, SvdError> {
    let run = HestenesSvd::new(SvdOptions::default().with_vectors(false)).compute(a)?;
    let sigma = &run.svd.sigma;
    let max = sigma.first().copied().unwrap_or(0.0);
    let min = sigma.last().copied().unwrap_or(0.0);
    Ok(if min == 0.0 { f64::INFINITY } else { max / min })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.rows()];
        for (j, &xj) in x.iter().enumerate() {
            treesvd_matrix::ops::axpy(xj, a.col(j), &mut out);
        }
        out
    }

    #[test]
    fn exact_system_solved() {
        // consistent overdetermined system: b = A x_true
        let a = generate::with_singular_values(12, &[5.0, 3.0, 2.0, 1.0], 1);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let b = matvec(&a, &x_true);
        let sol = lstsq(&a, &b, None).unwrap();
        assert_eq!(sol.effective_rank, 4);
        assert!(sol.residual_norm < 1e-10, "residual {}", sol.residual_norm);
        for (x, t) in sol.x.iter().zip(x_true.iter()) {
            assert!((x - t).abs() < 1e-9, "{x} vs {t}");
        }
    }

    #[test]
    fn inconsistent_system_minimizes_residual() {
        let a = generate::with_singular_values(10, &[4.0, 2.0, 1.0], 2);
        let mut b = matvec(&a, &[1.0, 1.0, 1.0]);
        // perturb b out of the column space
        let noise = generate::random_uniform(10, 1, 3);
        for (bi, r) in b.iter_mut().zip(noise.col(0).iter()) {
            *bi += r;
        }
        let sol = lstsq(&a, &b, None).unwrap();
        // the residual must be orthogonal to the column space: check that
        // perturbing x in any coordinate does not decrease the residual
        let base = sol.residual_norm;
        for j in 0..3 {
            for delta in [1e-4, -1e-4] {
                let mut x2 = sol.x.clone();
                x2[j] += delta;
                let mut r = b.clone();
                for (jj, &xj) in x2.iter().enumerate() {
                    treesvd_matrix::ops::axpy(-xj, a.col(jj), &mut r);
                }
                assert!(treesvd_matrix::ops::norm2(&r) >= base - 1e-12);
            }
        }
    }

    #[test]
    fn rank_deficient_gives_minimum_norm_solution() {
        let a = generate::rank_deficient(10, 5, 3, 4);
        let b = matvec(&a, &[1.0, 1.0, 1.0, 1.0, 1.0]);
        let sol = lstsq(&a, &b, None).unwrap();
        assert_eq!(sol.effective_rank, 3);
        assert!(sol.residual_norm < 1e-9);
        // minimum-norm: x lies in the row space; verify x ⊥ null(A) by
        // computing A⁺(A x) == x
        let pinv = pseudoinverse(&a, None).unwrap();
        let ax = matvec(&a, &sol.x);
        let x_back = matvec(&pinv, &ax);
        for (x1, x2) in sol.x.iter().zip(x_back.iter()) {
            assert!((x1 - x2).abs() < 1e-9);
        }
    }

    #[test]
    fn pseudoinverse_moore_penrose_conditions() {
        let a = generate::rank_deficient(8, 5, 4, 5);
        let p = pseudoinverse(&a, None).unwrap();
        // A A+ A = A
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.sub(&a).unwrap().frobenius_norm() < 1e-9 * a.frobenius_norm().max(1.0));
        // A+ A A+ = A+
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.sub(&p).unwrap().frobenius_norm() < 1e-9 * p.frobenius_norm().max(1.0));
        // (A A+) symmetric
        let aap = a.matmul(&p).unwrap();
        assert!(aap.sub(&aap.transpose()).unwrap().frobenius_norm() < 1e-9);
        // (A+ A) symmetric
        let paa = p.matmul(&a).unwrap();
        assert!(paa.sub(&paa.transpose()).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn pseudoinverse_of_full_rank_square_is_inverse() {
        let a = generate::with_singular_values(4, &[3.0, 2.0, 1.5, 1.0], 6);
        let p = pseudoinverse(&a, None).unwrap();
        let ap = a.matmul(&p).unwrap();
        let i = Matrix::identity(4, 4).unwrap();
        assert!(ap.sub(&i).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn condition_number_matches_construction() {
        let a = generate::with_singular_values(8, &[100.0, 10.0, 1.0], 7);
        let k = condition_number(&a).unwrap();
        assert!((k - 100.0).abs() < 1e-8, "kappa {k}");
        let singular = generate::rank_deficient(8, 4, 2, 8);
        assert!(condition_number(&singular).unwrap().is_infinite());
    }

    #[test]
    fn ridge_zero_lambda_equals_lstsq() {
        let a = generate::with_singular_values(10, &[4.0, 2.0, 1.0], 11);
        let b = matvec(&a, &[1.0, -1.0, 2.0]);
        let plain = lstsq(&a, &b, None).unwrap();
        let r = ridge(&a, &b, 0.0).unwrap();
        for (x, y) in plain.x.iter().zip(r.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn ridge_shrinks_the_solution() {
        let a = generate::with_singular_values(10, &[4.0, 2.0, 0.01], 12);
        let b = matvec(&a, &[1.0, 1.0, 1.0]);
        let x0 = treesvd_matrix::ops::norm2(&ridge(&a, &b, 0.0).unwrap());
        let x1 = treesvd_matrix::ops::norm2(&ridge(&a, &b, 0.5).unwrap());
        let x2 = treesvd_matrix::ops::norm2(&ridge(&a, &b, 5.0).unwrap());
        assert!(x1 < x0, "{x1} !< {x0}");
        assert!(x2 < x1, "{x2} !< {x1}");
    }

    #[test]
    fn rcond_truncation_regularizes() {
        // tiny trailing singular value amplifies noise unless truncated
        let a = generate::with_singular_values(12, &[1.0, 1.0, 1e-12], 9);
        let b = matvec(&a, &[1.0, 1.0, 1.0]);
        let strict = lstsq(&a, &b, Some(1e-6)).unwrap();
        assert_eq!(strict.effective_rank, 2);
        // solution stays bounded
        assert!(treesvd_matrix::ops::norm2(&strict.x) < 10.0);
    }
}
