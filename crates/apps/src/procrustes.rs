//! The orthogonal Procrustes problem: the rotation best aligning one point
//! set with another — solved, as always, by one SVD.

use treesvd_core::{HestenesSvd, Matrix, SvdError, SvdOptions};

/// Solve `min_R ‖A R − B‖_F` over orthogonal `R`: with `AᵀB = U Σ Vᵀ`,
/// the minimizer is `R = U Vᵀ`.
///
/// `A` and `B` are `m × n` point sets (rows are points).
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if the shapes differ.
pub fn orthogonal_procrustes(a: &Matrix, b: &Matrix) -> Result<Matrix, SvdError> {
    assert_eq!(a.shape(), b.shape(), "point sets must have the same shape");
    let m = a.transpose().matmul(b).map_err(|_| SvdError::EmptyMatrix)?;
    let run = HestenesSvd::new(SvdOptions::default()).compute(&m)?;
    run.svd.u.matmul(&run.svd.v.transpose()).map_err(|_| SvdError::EmptyMatrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::{checks, generate};

    #[test]
    fn recovers_a_known_rotation() {
        let a = generate::random_uniform(30, 4, 1);
        let q = generate::random_orthogonal(4, 2);
        let b = a.matmul(&q).unwrap();
        let r = orthogonal_procrustes(&a, &b).unwrap();
        // R recovers Q (up to machine precision) and is orthogonal
        assert!(checks::orthogonality_residual(&r) < 1e-10);
        assert!(r.sub(&q).unwrap().frobenius_norm() < 1e-9);
        // and actually aligns the sets
        let aligned = a.matmul(&r).unwrap();
        assert!(aligned.sub(&b).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn noisy_alignment_is_orthogonal_and_near_optimal() {
        let a = generate::random_uniform(25, 3, 3);
        let q = generate::random_orthogonal(3, 4);
        let mut b = a.matmul(&q).unwrap();
        let noise = generate::random_uniform(25, 3, 5);
        for i in 0..25 {
            for j in 0..3 {
                b.set(i, j, b.get(i, j) + 1e-3 * noise.get(i, j));
            }
        }
        let r = orthogonal_procrustes(&a, &b).unwrap();
        assert!(checks::orthogonality_residual(&r) < 1e-10);
        let err = a.matmul(&r).unwrap().sub(&b).unwrap().frobenius_norm();
        // residual is on the order of the injected noise
        assert!(err < 0.05, "residual {err}");
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 2).unwrap();
        let b = Matrix::zeros(3, 3).unwrap();
        let _ = orthogonal_procrustes(&a, &b);
    }
}
