//! The orthogonal Procrustes problem: the rotation best aligning one point
//! set with another — solved, as always, by one SVD.
//!
//! The cross-covariance `AᵀB` is `n × n` for `n` features — tiny compared
//! to the point sets — so up to [`SMALL_ORDER_MAX`](crate::SMALL_ORDER_MAX)
//! features its SVD runs on the batched SoA engine rather than the
//! tree-machine driver, and [`orthogonal_procrustes_batch`] aligns many
//! pairs at once with one engine run (the classic batched-Procrustes
//! workload: per-frame rigid alignment, shape analysis, sensor fusion).

use crate::{batch_to_svd_error, SMALL_ORDER_MAX};
use treesvd_batch::{batch_svd, BatchOptions, BatchSoA};
use treesvd_core::{HestenesSvd, Matrix, SvdError, SvdOptions};

/// Solve `min_R ‖A R − B‖_F` over orthogonal `R`: with `AᵀB = U Σ Vᵀ`,
/// the minimizer is `R = U Vᵀ`.
///
/// `A` and `B` are `m × n` point sets (rows are points). For
/// `n ≤ SMALL_ORDER_MAX` the `n × n` SVD runs on the batched small-SVD
/// engine (as a batch of one); larger problems use the tree-machine
/// driver.
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if the shapes differ.
pub fn orthogonal_procrustes(a: &Matrix, b: &Matrix) -> Result<Matrix, SvdError> {
    assert_eq!(a.shape(), b.shape(), "point sets must have the same shape");
    let m = a.transpose().matmul(b).map_err(|_| SvdError::EmptyMatrix)?;
    if m.cols() <= SMALL_ORDER_MAX {
        let rs = align_batch(std::slice::from_ref(&m))?;
        return Ok(rs.into_iter().next().expect("one problem in, one rotation out"));
    }
    let run = HestenesSvd::new(SvdOptions::default()).compute(&m)?;
    run.svd.u.matmul(&run.svd.v.transpose()).map_err(|_| SvdError::EmptyMatrix)
}

/// Align every `(Aᵢ, Bᵢ)` pair at once: one batched engine run solves all
/// the `n × n` cross-covariance SVDs in SoA lanes, returning each
/// minimizer `Rᵢ = Uᵢ Vᵢᵀ`.
///
/// All pairs must share the feature dimension `n` (their point counts may
/// differ). An empty slice yields an empty vector.
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if a pair's shapes differ or the feature dimensions disagree
/// across pairs.
pub fn orthogonal_procrustes_batch(pairs: &[(Matrix, Matrix)]) -> Result<Vec<Matrix>, SvdError> {
    let Some(((first_a, _), _)) = pairs.split_first() else {
        return Ok(Vec::new());
    };
    let n = first_a.cols();
    let ms = pairs
        .iter()
        .map(|(a, b)| {
            assert_eq!(a.shape(), b.shape(), "point sets must have the same shape");
            assert_eq!(a.cols(), n, "all pairs must share the feature dimension");
            a.transpose().matmul(b).map_err(|_| SvdError::EmptyMatrix)
        })
        .collect::<Result<Vec<_>, _>>()?;
    align_batch(&ms)
}

/// `Rᵢ = Uᵢ Vᵢᵀ` for every cross-covariance in `ms`, from one batched run.
fn align_batch(ms: &[Matrix]) -> Result<Vec<Matrix>, SvdError> {
    let mut batch =
        BatchSoA::from_matrices(ms, treesvd_batch::LANES).map_err(batch_to_svd_error)?;
    let out = batch_svd(&mut batch, &BatchOptions::default()).map_err(batch_to_svd_error)?;
    (0..ms.len())
        .map(|i| {
            let u = batch.problem(i);
            let v = out.v_problem(i).expect("vector accumulation is on by default");
            u.matmul(&v.transpose()).map_err(|_| SvdError::EmptyMatrix)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::{checks, generate};

    #[test]
    fn recovers_a_known_rotation() {
        let a = generate::random_uniform(30, 4, 1);
        let q = generate::random_orthogonal(4, 2);
        let b = a.matmul(&q).unwrap();
        let r = orthogonal_procrustes(&a, &b).unwrap();
        // R recovers Q (up to machine precision) and is orthogonal
        assert!(checks::orthogonality_residual(&r) < 1e-10);
        assert!(r.sub(&q).unwrap().frobenius_norm() < 1e-9);
        // and actually aligns the sets
        let aligned = a.matmul(&r).unwrap();
        assert!(aligned.sub(&b).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn noisy_alignment_is_orthogonal_and_near_optimal() {
        let a = generate::random_uniform(25, 3, 3);
        let q = generate::random_orthogonal(3, 4);
        let mut b = a.matmul(&q).unwrap();
        let noise = generate::random_uniform(25, 3, 5);
        for i in 0..25 {
            for j in 0..3 {
                b.set(i, j, b.get(i, j) + 1e-3 * noise.get(i, j));
            }
        }
        let r = orthogonal_procrustes(&a, &b).unwrap();
        assert!(checks::orthogonality_residual(&r) < 1e-10);
        let err = a.matmul(&r).unwrap().sub(&b).unwrap().frobenius_norm();
        // residual is on the order of the injected noise
        assert!(err < 0.05, "residual {err}");
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 2).unwrap();
        let b = Matrix::zeros(3, 3).unwrap();
        let _ = orthogonal_procrustes(&a, &b);
    }

    #[test]
    fn batch_alignment_matches_per_pair_calls() {
        // an uneven batch (spills into a second lane group, varied point
        // counts) must reproduce the one-pair entry point exactly
        let pairs: Vec<(Matrix, Matrix)> = (0..11)
            .map(|i| {
                let m = 12 + (i % 4) * 3;
                let a = generate::random_uniform(m, 5, 40 + i as u64);
                let q = generate::random_orthogonal(5, 80 + i as u64);
                let b = a.matmul(&q).unwrap();
                (a, b)
            })
            .collect();
        let rs = orthogonal_procrustes_batch(&pairs).unwrap();
        assert_eq!(rs.len(), pairs.len());
        for (i, ((a, b), r)) in pairs.iter().zip(rs.iter()).enumerate() {
            assert!(checks::orthogonality_residual(r) < 1e-10, "pair {i}");
            let solo = orthogonal_procrustes(a, b).unwrap();
            assert!(
                r.sub(&solo).unwrap().frobenius_norm() < 1e-12,
                "pair {i} disagrees with the solo path"
            );
            let err = a.matmul(r).unwrap().sub(b).unwrap().frobenius_norm();
            assert!(err < 1e-9, "pair {i} residual {err}");
        }
    }

    #[test]
    fn empty_batch_yields_empty_result() {
        assert!(orthogonal_procrustes_batch(&[]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn mixed_feature_dimensions_panic() {
        let pairs = [
            (generate::random_uniform(6, 3, 1), generate::random_uniform(6, 3, 2)),
            (generate::random_uniform(6, 4, 3), generate::random_uniform(6, 4, 4)),
        ];
        let _ = orthogonal_procrustes_batch(&pairs);
    }

    #[test]
    fn rank_deficient_cross_covariance_still_yields_a_rotation() {
        // B = A · (rank-1 projector): AᵀB is rank deficient; the engine's
        // orthonormal completion must still deliver an orthogonal R
        let a = generate::random_uniform(20, 4, 9);
        let p = Matrix::from_fn(4, 4, |i, j| if i == 0 && j == 0 { 1.0 } else { 0.0 }).unwrap();
        let b = a.matmul(&p).unwrap();
        let r = orthogonal_procrustes(&a, &b).unwrap();
        assert!(checks::orthogonality_residual(&r) < 1e-10);
    }

    #[test]
    fn large_order_falls_back_to_the_driver() {
        // n > SMALL_ORDER_MAX exercises the tree-machine path
        let n = crate::SMALL_ORDER_MAX + 1;
        let a = generate::random_uniform(n + 5, n, 11);
        let q = generate::random_orthogonal(n, 12);
        let b = a.matmul(&q).unwrap();
        let r = orthogonal_procrustes(&a, &b).unwrap();
        assert!(checks::orthogonality_residual(&r) < 1e-9);
        assert!(r.sub(&q).unwrap().frobenius_norm() < 1e-8);
    }
}
