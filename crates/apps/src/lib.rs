//! SVD applications on top of the tree-machine solver — the workloads the
//! paper's introduction motivates ("applications where sufficiently small
//! singular values are regarded as zero"): rank-revealing least squares,
//! pseudoinverses, symmetric eigenproblems, and principal component
//! analysis.
//!
//! Every routine here consumes the [`treesvd_core::HestenesSvd`] driver, so
//! each one exercises the full stack: orderings → simulated tree machine →
//! sorted singular values.
//!
//! ```
//! use treesvd_apps::{lstsq, condition_number};
//! use treesvd_matrix::generate;
//!
//! let a = generate::with_singular_values(10, &[4.0, 2.0, 1.0], 1);
//! // b = A [1, 1, 1]^T
//! let mut b = vec![0.0; 10];
//! for j in 0..3 {
//!     treesvd_matrix::ops::axpy(1.0, a.col(j), &mut b);
//! }
//! let sol = lstsq(&a, &b, None).unwrap();
//! assert_eq!(sol.effective_rank, 3);
//! assert!(sol.residual_norm < 1e-10);
//! assert!((condition_number(&a).unwrap() - 4.0).abs() < 1e-8);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod eigen;
pub mod lstsq;
pub mod pca;
pub mod procrustes;

pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use lstsq::{condition_number, lstsq, pseudoinverse, ridge, LstsqResult};
pub use pca::{pca, Pca};
pub use procrustes::{orthogonal_procrustes, orthogonal_procrustes_batch};

/// Largest problem order the applications route through the batched
/// small-SVD engine ([`treesvd_batch`]) instead of the tree-machine
/// driver. Below this order the cross-covariance / Gram matrices are too
/// small for within-problem parallelism to pay off; the SoA engine solves
/// them with the sequential driver's exact conventions.
pub const SMALL_ORDER_MAX: usize = 64;

/// Map a batched-engine error onto the driver error type so application
/// signatures stay uniform. Only `NoConvergence` can actually surface from
/// well-formed application inputs (shapes are validated before packing);
/// the batch engine reports no coupling estimate, so that field is `NaN`.
pub(crate) fn batch_to_svd_error(e: treesvd_batch::BatchError) -> treesvd_core::SvdError {
    match e {
        treesvd_batch::BatchError::NoConvergence { sweeps, .. } => {
            treesvd_core::SvdError::NoConvergence { sweeps, last_coupling: f64::NAN }
        }
        _ => treesvd_core::SvdError::EmptyMatrix,
    }
}
