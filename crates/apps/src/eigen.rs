//! Symmetric eigendecomposition via the one-sided Jacobi SVD.
//!
//! The paper's lineage (Brent & Luk \[2\]) treats the symmetric eigenvalue
//! problem with the same machinery: for symmetric `A`, the SVD gives
//! `A = U Σ Vᵀ` with `|λ_i| = σ_i`, and the sign of each eigenvalue is the
//! sign of the Rayleigh quotient `v_iᵀ A v_i`. The eigenvectors are the
//! right singular vectors.

use treesvd_core::{HestenesSvd, Matrix, SvdError, SvdOptions};

/// A symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted by decreasing magnitude.
    pub lambda: Vec<f64>,
    /// Orthogonal eigenvectors (column `i` pairs with `lambda[i]`).
    pub q: Matrix,
}

impl SymmetricEigen {
    /// Residual `‖AQ − QΛ‖_F / ‖A‖_F`.
    pub fn residual(&self, a: &Matrix) -> f64 {
        let aq = a.matmul(&self.q).expect("shape agreement");
        let mut ql = self.q.clone();
        for (i, &l) in self.lambda.iter().enumerate() {
            treesvd_matrix::ops::scal(l, ql.col_mut(i));
        }
        let num = aq.sub(&ql).expect("same shape").frobenius_norm();
        let den = a.frobenius_norm();
        if den == 0.0 {
            num
        } else {
            num / den
        }
    }
}

/// Eigendecomposition of a symmetric matrix via the tree-machine SVD.
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics if `a` is not square or not symmetric to `1e-10 · ‖A‖` (callers
/// should symmetrize noisy inputs first).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, SvdError> {
    let (m, n) = a.shape();
    assert_eq!(m, n, "matrix must be square");
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a.get(i, j) - a.get(j, i)).abs() <= 1e-10 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }
    let run = HestenesSvd::new(SvdOptions::default()).compute(a)?;
    let svd = run.svd;
    let mut lambda = Vec::with_capacity(n);
    for i in 0..n {
        let s = svd.sigma[i];
        if s == 0.0 {
            lambda.push(0.0);
            continue;
        }
        // sign via the Rayleigh quotient of the right singular vector
        let v = svd.v.col(i);
        let mut av = vec![0.0; n];
        for (j, &vj) in v.iter().enumerate() {
            treesvd_matrix::ops::axpy(vj, a.col(j), &mut av);
        }
        let rq = treesvd_matrix::ops::dot(v, &av);
        lambda.push(if rq < 0.0 { -s } else { s });
    }
    Ok(SymmetricEigen { lambda, q: svd.v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_matrix::generate;

    /// Build a symmetric matrix with prescribed eigenvalues.
    fn with_eigenvalues(lambda: &[f64], seed: u64) -> Matrix {
        let n = lambda.len();
        let q = generate::random_orthogonal(n, seed);
        let d = Matrix::diagonal(n, lambda).expect("square");
        q.matmul(&d).unwrap().matmul(&q.transpose()).unwrap()
    }

    #[test]
    fn positive_definite_case() {
        let lambda = [5.0, 3.0, 1.0, 0.5];
        let a = with_eigenvalues(&lambda, 1);
        let eig = symmetric_eigen(&a).unwrap();
        for (c, e) in eig.lambda.iter().zip(lambda.iter()) {
            assert!((c - e).abs() < 1e-9, "{c} vs {e}");
        }
        assert!(eig.residual(&a) < 1e-10);
        assert!(treesvd_matrix::checks::orthogonality_residual(&eig.q) < 1e-10);
    }

    #[test]
    fn indefinite_signs_recovered() {
        let lambda = [4.0, -3.0, 2.0, -1.0];
        let a = with_eigenvalues(&lambda, 2);
        let eig = symmetric_eigen(&a).unwrap();
        // sorted by magnitude: 4, -3, 2, -1
        let expect = [4.0, -3.0, 2.0, -1.0];
        for (c, e) in eig.lambda.iter().zip(expect.iter()) {
            assert!((c - e).abs() < 1e-9, "{c} vs {e}");
        }
        assert!(eig.residual(&a) < 1e-9);
    }

    #[test]
    fn singular_symmetric_matrix() {
        let lambda = [2.0, -1.0, 0.0, 0.0];
        let a = with_eigenvalues(&lambda, 3);
        let eig = symmetric_eigen(&a).unwrap();
        assert!((eig.lambda[0] - 2.0).abs() < 1e-9);
        assert!((eig.lambda[1] + 1.0).abs() < 1e-9);
        assert_eq!(eig.lambda[2], 0.0);
        assert_eq!(eig.lambda[3], 0.0);
        assert!(eig.residual(&a) < 1e-9);
    }

    #[test]
    fn negative_definite_case() {
        let lambda = [-1.0, -2.0, -5.0];
        let a = with_eigenvalues(&lambda, 4);
        let eig = symmetric_eigen(&a).unwrap();
        let expect = [-5.0, -2.0, -1.0]; // sorted by magnitude
        for (c, e) in eig.lambda.iter().zip(expect.iter()) {
            assert!((c - e).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_rejected() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let _ = symmetric_eigen(&a);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_rejected() {
        let a = Matrix::zeros(3, 2).unwrap();
        let _ = symmetric_eigen(&a);
    }

    #[test]
    fn eigenvectors_satisfy_av_equals_lv() {
        let lambda = [3.0, -2.0, 1.0, 0.5, -0.25];
        let a = with_eigenvalues(&lambda, 5);
        let eig = symmetric_eigen(&a).unwrap();
        for i in 0..5 {
            let v = eig.q.col(i);
            let mut av = vec![0.0; 5];
            for (j, &vj) in v.iter().enumerate() {
                treesvd_matrix::ops::axpy(vj, a.col(j), &mut av);
            }
            for (x, &vi) in av.iter().zip(v.iter()) {
                assert!((x - eig.lambda[i] * vi).abs() < 1e-9, "eigenpair {i}");
            }
        }
    }
}
