//! The CM-5 story (paper §5/§6): why the hybrid ordering exists.
//!
//! Sweeps one matrix through three orderings on three topologies and
//! reports simulated communication time and contention — reproducing the
//! paper's argument that (a) the fat-tree ordering is the best fit for a
//! *perfect* fat-tree, but (b) on the CM-5's skinny tree it contends, and
//! (c) the hybrid ordering removes the contention entirely.
//!
//! ```text
//! cargo run --release -p treesvd-core --example cm5_contention
//! ```

use treesvd_core::{OrderingKind, TopologyKind};
use treesvd_orderings::{HybridOrdering, JacobiOrdering};
use treesvd_sim::{analyze_program, Machine};

fn main() {
    let n = 64; // 64 columns = a 32-processor machine, like the ANU CM-5
    let words = 512; // long columns: bandwidth-dominated, like the paper's regime

    let mut orderings: Vec<(String, Box<dyn JacobiOrdering>)> = vec![
        ("round-robin".into(), OrderingKind::RoundRobin.build(n).unwrap()),
        ("new-ring".into(), OrderingKind::NewRing.build(n).unwrap()),
        ("fat-tree".into(), OrderingKind::FatTree.build(n).unwrap()),
    ];
    let hy = HybridOrdering::new(n, n / 4).unwrap();
    orderings.push((format!("{} (block size 2)", hy.name()), Box::new(hy)));

    println!("one sweep, n = {n} columns of {words} words, 32 leaf processors\n");
    println!(
        "{:<28} {:>18} {:>12} {:>12}",
        "ordering / topology", "comm time", "contention", "global steps"
    );
    for (name, ord) in &orderings {
        let prog = ord.sweep_program(0, &ord.initial_layout());
        for kind in [TopologyKind::PerfectFatTree, TopologyKind::Cm5, TopologyKind::BinaryTree] {
            let machine = Machine::with_kind(kind, n / 2);
            let rep = analyze_program(&machine, &prog, words);
            println!(
                "{:<28} {:>18.1} {:>12.2} {:>12}",
                format!("{name} / {kind}"),
                rep.comm_time,
                rep.max_contention,
                rep.global_steps
            );
        }
        println!();
    }

    println!("reading guide:");
    println!(" * contention <= 1.00 means no interior channel is ever the bottleneck;");
    println!(" * on cm5-tree only the hybrid ordering keeps contention at 1.00 while");
    println!("   still using O(log n) global steps — the paper's §6 prediction;");
    println!(" * on the perfect fat-tree the fat-tree ordering's localized traffic wins.");
}
