//! Quickstart: compute an SVD on the simulated tree machine and inspect
//! both the numerics and the machine-level diagnostics.
//!
//! ```text
//! cargo run --release -p treesvd-core --example quickstart
//! ```

use treesvd_core::{HestenesSvd, OrderingKind, SvdOptions};
use treesvd_matrix::generate;

fn main() {
    // A 64 × 32 matrix with known singular values 32, 31, …, 1.
    let sigma_true: Vec<f64> = (1..=32).rev().map(|k| k as f64).collect();
    let a = generate::with_singular_values(64, &sigma_true, 2024);

    // Default solver: the paper's fat-tree ordering on a perfect binary
    // fat-tree, sorted singular values.
    let run = HestenesSvd::new(SvdOptions::default()).compute(&a).expect("convergence");

    println!(
        "converged in {} sweeps (simulated machine time {:.3e})",
        run.sweeps, run.simulated_time
    );
    println!("first five singular values: {:?}", &run.svd.sigma[..5]);
    println!("reconstruction residual:    {:.3e}", run.svd.residual(&a));
    println!("factor orthogonality:       {:.3e}", run.svd.orthogonality());
    println!("rank:                       {}", run.svd.rank);

    // The same matrix under a different ordering gives the same answer —
    // only the communication profile changes.
    let run2 = HestenesSvd::with_ordering(OrderingKind::NewRing).compute(&a).expect("convergence");
    let max_diff = run
        .svd
        .sigma
        .iter()
        .zip(run2.svd.sigma.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max);
    println!("\nnew-ring ordering: {} sweeps, max |Δσ| vs fat-tree = {max_diff:.3e}", run2.sweeps);

    // Convergence trace: ultimately quadratic (paper §1).
    println!("\nper-sweep max coupling:");
    for (k, c) in run.coupling_history().iter().enumerate() {
        println!("  sweep {:2}: {c:.3e}", k + 1);
    }
}
