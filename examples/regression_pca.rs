//! Regression and dimensionality reduction on the tree-machine SVD — the
//! `treesvd-apps` layer in action.
//!
//! Fits a noisy linear model by rank-revealing least squares, then runs
//! PCA on correlated sensor data and reports the explained variance.
//!
//! ```text
//! cargo run --release -p treesvd-apps --example regression_pca
//! ```

use treesvd_apps::{condition_number, lstsq, pca, symmetric_eigen};
use treesvd_core::Matrix;
use treesvd_matrix::generate;

fn main() {
    // ---- least squares ----
    let m = 60;
    let design = generate::with_singular_values(m, &[8.0, 4.0, 2.0, 1.0, 0.5], 11);
    let x_true = [2.0, -1.0, 0.5, 3.0, -0.25];
    let mut b = vec![0.0; m];
    for (j, &xj) in x_true.iter().enumerate() {
        treesvd_matrix::ops::axpy(xj, design.col(j), &mut b);
    }
    // add noise
    let noise = generate::random_uniform(m, 1, 12);
    for (bi, &r) in b.iter_mut().zip(noise.col(0).iter()) {
        *bi += 1e-3 * r;
    }
    let sol = lstsq(&design, &b, None).expect("solvable");
    println!("least squares: rank {}, residual {:.3e}", sol.effective_rank, sol.residual_norm);
    println!(
        "  coefficients: {:?}",
        sol.x.iter().map(|x| (x * 1e4).round() / 1e4).collect::<Vec<_>>()
    );
    println!("  condition number of the design: {:.2}", condition_number(&design).unwrap());

    // ---- PCA on correlated data ----
    let samples = 120;
    let features = 10;
    let latent = generate::random_uniform(samples, 2, 13); // 2 latent factors
    let mixing = generate::random_uniform(2, features, 14);
    let mut data = Matrix::zeros(samples, features).unwrap();
    for i in 0..samples {
        for j in 0..features {
            let mut v = 0.0;
            for k in 0..2 {
                v += latent.get(i, k) * mixing.get(k, j);
            }
            data.set(i, j, v + 0.01 * ((i * 7 + j * 13) % 17) as f64 / 17.0);
        }
    }
    let model = pca(&data).expect("pca fits");
    println!(
        "\npca: explained variance ratios (first 4): {:?}",
        model
            .explained_ratio
            .iter()
            .take(4)
            .map(|r| (r * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let top2: f64 = model.explained_ratio.iter().take(2).sum();
    println!(
        "  first two components explain {:.1}% of the variance (true latent dim = 2)",
        top2 * 100.0
    );
    assert!(top2 > 0.95);

    // ---- symmetric eigenproblem ----
    let q = generate::random_orthogonal(6, 15);
    let lambda = [5.0, -4.0, 3.0, -2.0, 1.0, 0.5];
    let d = Matrix::diagonal(6, &lambda).unwrap();
    let a = q.matmul(&d).unwrap().matmul(&q.transpose()).unwrap();
    let eig = symmetric_eigen(&a).expect("symmetric");
    println!(
        "\nsymmetric eigenvalues (by |magnitude|): {:?}",
        eig.lambda.iter().map(|l| (l * 1e6).round() / 1e6).collect::<Vec<_>>()
    );
    println!("  residual ||AQ - QL||/||A|| = {:.2e}", eig.residual(&a));
}
