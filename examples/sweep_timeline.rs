//! Sweep timelines: where one sweep's simulated time goes, per ordering
//! and topology — the profiling view behind the paper's §6 conclusions.
//!
//! ```text
//! cargo run --release -p treesvd-core --example sweep_timeline
//! ```

use treesvd_core::{OrderingKind, TopologyKind};
use treesvd_sim::{Machine, Timeline};

fn main() {
    let n = 32;
    let words = 256;
    for (kind, topo) in [
        (OrderingKind::FatTree, TopologyKind::PerfectFatTree),
        (OrderingKind::FatTree, TopologyKind::Cm5),
        (OrderingKind::Hybrid, TopologyKind::Cm5),
        (OrderingKind::RoundRobin, TopologyKind::PerfectFatTree),
    ] {
        let ord = kind.build(n).expect("size ok");
        let machine = Machine::with_kind(topo, n / 2);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let tl = Timeline::of(&machine, &prog, words);
        println!("== {} on {topo} ==", ord.name());
        println!(
            "total {:.0}, comm fraction {:.0}%, bottleneck step {}",
            tl.total(),
            tl.comm_fraction() * 100.0,
            tl.bottleneck().map(|(i, _)| i + 1).unwrap_or(0)
        );
        println!("{}", tl.render(48));
    }
    println!("reading guide: on the perfect fat-tree the fat-tree ordering's profile is");
    println!("almost flat (only the rare merge steps spike); on the CM-5 those spikes");
    println!("stretch with contention, which the hybrid ordering's profile avoids.");
}
