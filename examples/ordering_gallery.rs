//! Ordering gallery: print every ordering's schedule for a small size and
//! its one-sweep communication profile on a perfect fat-tree — a compact
//! tour of the paper's contributions.
//!
//! ```text
//! cargo run --release -p treesvd-core --example ordering_gallery [n]
//! ```

use treesvd_core::{OrderingKind, TopologyKind};
use treesvd_orderings::render::render_sweep;
use treesvd_sim::{analyze_program, Machine};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    for kind in OrderingKind::ALL {
        let ord = match kind.build(n) {
            Ok(o) => o,
            Err(e) => {
                println!("== {kind}: skipped for n = {n} ({e}) ==\n");
                continue;
            }
        };
        let prog = ord.sweep_program(0, &ord.initial_layout());
        println!(
            "== {} (n = {n}, {} steps, restores after {} sweep(s)) ==",
            ord.name(),
            prog.steps.len(),
            ord.restore_period()
        );
        println!("{}", render_sweep(&prog, None));

        let machine = Machine::with_kind(TopologyKind::PerfectFatTree, (n / 2).next_power_of_two());
        let rep = analyze_program(&machine, &prog, 64);
        println!(
            "per-sweep: comm time {:.1}, global steps {}, level histogram {:?}, worst contention {:.2}\n",
            rep.comm_time, rep.global_steps, &rep.level_histogram[1..], rep.max_contention
        );
    }
}
