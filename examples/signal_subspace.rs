//! Signal-subspace extraction: a realistic SVD application of the kind the
//! paper's introduction motivates (small singular values treated as zero).
//!
//! A low-rank "signal" matrix is buried in additive noise; the sorted
//! singular values from the tree-machine SVD expose the rank gap, and
//! truncating at the gap denoises the data. Because the singular values
//! emerge *sorted* (paper §3.2.1), finding the gap is a single scan — the
//! convenience the paper highlights.
//!
//! ```text
//! cargo run --release -p treesvd-core --example signal_subspace
//! ```

use treesvd_core::{HestenesSvd, SvdOptions};
use treesvd_matrix::{generate, Matrix};

fn main() {
    let (m, n, rank) = (96usize, 48usize, 6usize);
    let noise_level = 1e-3;

    // signal: rank-6 with strong singular values 10, 9, ..., 5
    let sigma_signal: Vec<f64> =
        (0..n).map(|k| if k < rank { (10 - k) as f64 } else { 0.0 }).collect();
    let signal = generate::with_singular_values(m, &sigma_signal, 7);

    // noise: dense random perturbation
    let mut noise = generate::random_uniform(m, n, 8);
    noise.scale(noise_level);
    let observed = signal
        .sub(&{
            let mut neg = noise.clone();
            neg.scale(-1.0);
            neg
        })
        .expect("same shape");

    let run = HestenesSvd::new(SvdOptions::default()).compute(&observed).expect("convergence");
    println!("converged in {} sweeps", run.sweeps);
    println!("leading singular values: {:?}", &run.svd.sigma[..rank + 2]);

    // find the spectral gap by scanning the sorted sigma
    let detected_rank = detect_rank(&run.svd.sigma);
    println!("detected signal rank: {detected_rank} (true rank {rank})");
    assert_eq!(detected_rank, rank, "rank detection failed");

    // denoise by truncating at the gap
    let denoised = run.svd.truncate(detected_rank).expect("valid k");
    let err_before = relative_error(&observed, &signal);
    let err_after = relative_error(&denoised, &signal);
    println!("relative error vs clean signal: before {err_before:.3e}, after {err_after:.3e}");
    assert!(err_after < err_before, "truncation must denoise");
    println!("noise suppressed by a factor of {:.1}", err_before / err_after);
}

/// Detect the rank at the largest relative gap in the sorted spectrum.
fn detect_rank(sigma: &[f64]) -> usize {
    let mut best = (0usize, 0.0_f64);
    for k in 1..sigma.len() {
        if sigma[k] <= 0.0 {
            return best.0.max(k.min(best.0.max(1)));
        }
        let ratio = sigma[k - 1] / sigma[k];
        if ratio > best.1 {
            best = (k, ratio);
        }
    }
    best.0
}

fn relative_error(x: &Matrix, reference: &Matrix) -> f64 {
    x.sub(reference).expect("same shape").frobenius_norm() / reference.frobenius_norm()
}
